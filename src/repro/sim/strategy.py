"""Strategy framework: how processors behave.

A *strategy* (paper, Section 2) is a deterministic function of the
processor's id, its private random string, and its history. Here it is an
object with two callbacks:

- :meth:`Strategy.on_wakeup` — called once at the start of the execution.
  Only strategies that act spontaneously (e.g. the ring origin) should send
  here; others typically just initialize local state.
- :meth:`Strategy.on_receive` — called for each delivered message.

Callbacks act through a :class:`Context`, which exposes ``send`` and
``terminate`` plus the processor's private RNG stream. Sends are queued in
call order; ``terminate`` may be called at most once and ends the
processor's participation (later incoming messages are silently dropped, as
in the model where a terminated processor no longer computes).
"""

import random
from abc import ABC, abstractmethod
from typing import Any, Hashable, List, Optional, Tuple

from repro.util.errors import ProtocolViolation

#: Sentinel for the abort output ⊥. Kept here to avoid an import cycle;
#: re-exported by :mod:`repro.sim.execution` as ``ABORT``.
_ABORT_SENTINEL = "⊥"


class Context:
    """Per-callback action collector handed to strategy callbacks.

    On the traced path a fresh context is created for every callback
    invocation; the executor's untraced fast path instead keeps one
    context per processor and clears ``sends`` between callbacks (see
    :meth:`reset_actions`), which is indistinguishable to strategies
    that act only within the callback — the documented contract. The
    context also carries read-only information the strategy is entitled
    to: its id, its out-neighbours, the ring size, and its private RNG.
    """

    __slots__ = (
        "pid",
        "out_neighbors",
        "n",
        "rng",
        "sends",
        "terminated",
        "output",
        "abort_reason",
    )

    def __init__(
        self,
        pid: Hashable,
        out_neighbors: List[Hashable],
        n: int,
        rng: random.Random,
    ):
        self.pid = pid
        self.out_neighbors = out_neighbors
        self.n = n
        self.rng = rng
        self.sends: List[Tuple[Hashable, Any]] = []
        self.terminated = False
        self.output: Any = None
        self.abort_reason: Optional[str] = None

    def reset_actions(self) -> None:
        """Clear queued sends between callbacks (fast-path reuse only).

        Termination state is deliberately *not* cleared: a terminated
        processor receives no further callbacks, and keeping the flag
        preserves the send-after-terminate guard across reuse.
        """
        self.sends.clear()

    def send(self, to: Hashable, value: Any) -> None:
        """Queue ``value`` on the link to ``to`` (must be an out-neighbour)."""
        if self.terminated:
            raise ProtocolViolation(f"{self.pid} tried to send after terminating")
        if to not in self.out_neighbors:
            raise ProtocolViolation(
                f"{self.pid} tried to send to non-neighbour {to}"
            )
        self.sends.append((to, value))

    def send_next(self, value: Any) -> None:
        """Send to the unique out-neighbour (ring convenience).

        Flattened rather than delegating to :meth:`send`: ring protocols
        call this once per delivery, and the membership check is vacuous
        for the single out-neighbour.
        """
        out = self.out_neighbors
        if len(out) != 1:
            raise ProtocolViolation(
                f"{self.pid} called send_next with {len(out)} "
                "out-neighbours; use send(to, value)"
            )
        if self.terminated:
            raise ProtocolViolation(f"{self.pid} tried to send after terminating")
        self.sends.append((out[0], value))

    def terminate(self, output: Any) -> None:
        """Terminate with ``output``. May be called at most once."""
        if self.terminated:
            raise ProtocolViolation(f"{self.pid} terminated twice")
        self.terminated = True
        self.output = output

    def abort(self, reason: str = "") -> None:
        """Terminate with ⊥ (the paper's abort / punishment action)."""
        self.terminate(_ABORT_SENTINEL)
        self.abort_reason = reason or "abort"


class Strategy(ABC):
    """Behaviour of one processor. Instances must not be shared.

    A strategy instance holds the processor's local state between
    callbacks, so each processor in a protocol needs its own instance.
    (The empty ``__slots__`` here lets hot subclasses declare their own
    and become ``__dict__``-free; subclasses that don't bother keep a
    ``__dict__`` as usual.)
    """

    __slots__ = ()

    @abstractmethod
    def on_wakeup(self, ctx: Context) -> None:
        """Called once before any message is delivered."""

    @abstractmethod
    def on_receive(self, ctx: Context, value: Any, sender: Hashable) -> None:
        """Called for each message delivered to this processor."""


class SilentStrategy(Strategy):
    """A processor that does nothing, ever.

    Useful in tests and as the crash/fail-stop baseline: on a ring a silent
    processor stalls the whole execution, which the executor reports as a
    ``FAIL`` outcome by non-termination.
    """

    __slots__ = ()

    def on_wakeup(self, ctx: Context) -> None:
        pass

    def on_receive(self, ctx: Context, value: Any, sender: Hashable) -> None:
        pass
