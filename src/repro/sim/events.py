"""Trace event records.

Every observable action in an execution is recorded as one of these frozen
dataclasses. ``time`` is the logical step at which the simulator processed
the action (a global, monotonically increasing counter). ``seq`` fields are
1-based per-processor counters matching the paper's ``send(p, i)`` /
``recv(p, i)`` event notation (Appendix E.1).
"""

from dataclasses import dataclass
from typing import Any, Hashable


@dataclass(frozen=True)
class WakeupEvent:
    """Processor ``pid`` woke up spontaneously at logical ``time``."""

    time: int
    pid: Hashable


@dataclass(frozen=True)
class SendEvent:
    """``sender`` enqueued ``value`` on the link to ``receiver``.

    ``seq`` is the number of messages ``sender`` has sent so far (1-based),
    i.e. this event is the paper's ``send(sender, seq)``.
    """

    time: int
    sender: Hashable
    receiver: Hashable
    value: Any
    seq: int


@dataclass(frozen=True)
class ReceiveEvent:
    """``receiver`` processed ``value`` arriving from ``sender``.

    ``seq`` counts messages received by ``receiver`` so far (1-based),
    matching the paper's ``recv(receiver, seq)``.
    """

    time: int
    sender: Hashable
    receiver: Hashable
    value: Any
    seq: int


@dataclass(frozen=True)
class TerminateEvent:
    """``pid`` terminated with ``output`` (any value; ``ABORT`` for ⊥)."""

    time: int
    pid: Hashable
    output: Any


@dataclass(frozen=True)
class AbortEvent:
    """``pid`` aborted (terminated with ⊥). ``reason`` is free-form text."""

    time: int
    pid: Hashable
    reason: str
