"""Trace event records.

Every observable action in an execution is recorded as one of these frozen
dataclasses. ``time`` is the logical step at which the simulator processed
the action (a global, monotonically increasing counter). ``seq`` fields are
1-based per-processor counters matching the paper's ``send(p, i)`` /
``recv(p, i)`` event notation (Appendix E.1).

Each class carries an int ``kind`` class constant (and ``__slots__``), so
hot trace filters can dispatch on an integer compare instead of an
``isinstance`` chain and event objects stay ``__dict__``-free — traced
runs allocate one of these per simulator action, so their footprint is
the trace's footprint.
"""

from dataclasses import dataclass
from typing import Any, ClassVar, Hashable

#: Int codes for the five event kinds (``SomeEvent.kind`` values).
KIND_WAKEUP = 0
KIND_SEND = 1
KIND_RECEIVE = 2
KIND_TERMINATE = 3
KIND_ABORT = 4


@dataclass(frozen=True)
class WakeupEvent:
    """Processor ``pid`` woke up spontaneously at logical ``time``."""

    __slots__ = ("time", "pid")
    kind: ClassVar[int] = KIND_WAKEUP

    time: int
    pid: Hashable


@dataclass(frozen=True)
class SendEvent:
    """``sender`` enqueued ``value`` on the link to ``receiver``.

    ``seq`` is the number of messages ``sender`` has sent so far (1-based),
    i.e. this event is the paper's ``send(sender, seq)``.
    """

    __slots__ = ("time", "sender", "receiver", "value", "seq")
    kind: ClassVar[int] = KIND_SEND

    time: int
    sender: Hashable
    receiver: Hashable
    value: Any
    seq: int


@dataclass(frozen=True)
class ReceiveEvent:
    """``receiver`` processed ``value`` arriving from ``sender``.

    ``seq`` counts messages received by ``receiver`` so far (1-based),
    matching the paper's ``recv(receiver, seq)``.
    """

    __slots__ = ("time", "sender", "receiver", "value", "seq")
    kind: ClassVar[int] = KIND_RECEIVE

    time: int
    sender: Hashable
    receiver: Hashable
    value: Any
    seq: int


@dataclass(frozen=True)
class TerminateEvent:
    """``pid`` terminated with ``output`` (any value; ``ABORT`` for ⊥)."""

    __slots__ = ("time", "pid", "output")
    kind: ClassVar[int] = KIND_TERMINATE

    time: int
    pid: Hashable
    output: Any


@dataclass(frozen=True)
class AbortEvent:
    """``pid`` aborted (terminated with ⊥). ``reason`` is free-form text."""

    __slots__ = ("time", "pid", "reason")
    kind: ClassVar[int] = KIND_ABORT

    time: int
    pid: Hashable
    reason: str
