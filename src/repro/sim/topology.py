"""Communication topologies.

A :class:`Topology` is a simple directed multigraph-free digraph over
hashable processor ids with FIFO links on each directed edge. Constructors
for the topologies used in the paper are provided: the unidirectional ring
(the paper's main object), bidirectional rings, lines, stars, and complete
graphs (for the general-network results of Section 7).
"""

from typing import Dict, Hashable, Iterable, List, Sequence, Set, Tuple

from repro.util.errors import ConfigurationError


class Topology:
    """A directed communication graph with stable iteration order.

    Parameters
    ----------
    nodes:
        Processor ids. Order is preserved and used for deterministic
        iteration everywhere in the simulator.
    edges:
        Directed links ``(sender, receiver)``. A strategy may send on a
        link only if it exists here.
    """

    def __init__(
        self,
        nodes: Sequence[Hashable],
        edges: Iterable[Tuple[Hashable, Hashable]],
    ):
        self._nodes: List[Hashable] = list(nodes)
        node_set: Set[Hashable] = set(self._nodes)
        if len(node_set) != len(self._nodes):
            raise ConfigurationError("duplicate node ids in topology")
        if not self._nodes:
            raise ConfigurationError("topology must have at least one node")
        self._edges: List[Tuple[Hashable, Hashable]] = []
        seen: Set[Tuple[Hashable, Hashable]] = set()
        self._out: Dict[Hashable, List[Hashable]] = {v: [] for v in self._nodes}
        self._in: Dict[Hashable, List[Hashable]] = {v: [] for v in self._nodes}
        for u, v in edges:
            if u not in node_set or v not in node_set:
                raise ConfigurationError(f"edge ({u}, {v}) references unknown node")
            if u == v:
                raise ConfigurationError(f"self-loop on node {u} is not allowed")
            if (u, v) in seen:
                continue
            seen.add((u, v))
            self._edges.append((u, v))
            self._out[u].append(v)
            self._in[v].append(u)

    @property
    def nodes(self) -> List[Hashable]:
        """Processor ids in declaration order."""
        return list(self._nodes)

    @property
    def edges(self) -> List[Tuple[Hashable, Hashable]]:
        """Directed links in declaration order."""
        return list(self._edges)

    def __len__(self) -> int:
        return len(self._nodes)

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        """True if there is a directed link from ``u`` to ``v``."""
        return v in self._out.get(u, ())

    def successors(self, u: Hashable) -> List[Hashable]:
        """Nodes reachable from ``u`` over one outgoing link."""
        return list(self._out[u])

    def predecessors(self, v: Hashable) -> List[Hashable]:
        """Nodes with a link into ``v``."""
        return list(self._in[v])

    def undirected_edges(self) -> Set[Tuple[Hashable, Hashable]]:
        """Edge set with direction erased (each pair sorted by repr)."""
        out: Set[Tuple[Hashable, Hashable]] = set()
        for u, v in self._edges:
            key = (u, v) if repr(u) <= repr(v) else (v, u)
            out.add(key)
        return out

    def is_strongly_connected(self) -> bool:
        """True if every node reaches every other along directed links."""
        for start in self._nodes[:1]:
            if len(self._reach(start, self._out)) != len(self._nodes):
                return False
            if len(self._reach(start, self._in)) != len(self._nodes):
                return False
        return True

    def _reach(
        self, start: Hashable, adj: Dict[Hashable, List[Hashable]]
    ) -> Set[Hashable]:
        seen = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for v in adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return seen


def unidirectional_ring(n: int) -> Topology:
    """Directed ring ``1 → 2 → ... → n → 1`` with 1-based ids.

    This is the paper's main topology: each processor has exactly one
    incoming and one outgoing FIFO link, so all oblivious message schedules
    are equivalent (Section 2).
    """
    if n < 2:
        raise ConfigurationError(f"ring needs at least 2 processors, got {n}")
    nodes = list(range(1, n + 1))
    edges = [(i, i % n + 1) for i in nodes]
    return Topology(nodes, edges)


def bidirectional_ring(n: int) -> Topology:
    """Ring with links in both directions, 1-based ids."""
    if n < 2:
        raise ConfigurationError(f"ring needs at least 2 processors, got {n}")
    nodes = list(range(1, n + 1))
    edges = []
    for i in nodes:
        j = i % n + 1
        edges.append((i, j))
        edges.append((j, i))
    return Topology(nodes, edges)


def line_graph(n: int) -> Topology:
    """Bidirectional path ``1 – 2 – ... – n`` (a tree; 1-simulated tree)."""
    if n < 1:
        raise ConfigurationError("line needs at least 1 processor")
    nodes = list(range(1, n + 1))
    edges = []
    for i in range(1, n):
        edges.append((i, i + 1))
        edges.append((i + 1, i))
    return Topology(nodes, edges)


def complete_graph(n: int) -> Topology:
    """Fully connected bidirectional topology on ``n`` nodes."""
    if n < 2:
        raise ConfigurationError("complete graph needs at least 2 processors")
    nodes = list(range(1, n + 1))
    edges = [(u, v) for u in nodes for v in nodes if u != v]
    return Topology(nodes, edges)


def star_graph(n: int) -> Topology:
    """Star: node 1 is the hub connected bidirectionally to ``2..n``."""
    if n < 2:
        raise ConfigurationError("star needs at least 2 processors")
    nodes = list(range(1, n + 1))
    edges = []
    for i in range(2, n + 1):
        edges.append((1, i))
        edges.append((i, 1))
    return Topology(nodes, edges)
