"""Execution traces and trace analytics.

A :class:`Trace` is the append-only list of events recorded by the executor.
It also provides the derived views the paper's proofs reason about: per-
processor sent/received message lists, ``Sent_i^t`` counters over time, and
the synchronization gap ``max_{i,j} |Sent_i^t - Sent_j^t|`` central to the
resilience analysis (Section 5, Lemma D.5).
"""

from collections import defaultdict
from typing import Any, Dict, Hashable, Iterable, List, Optional, Union

from repro.sim.events import (
    KIND_RECEIVE,
    KIND_SEND,
    KIND_TERMINATE,
    AbortEvent,
    ReceiveEvent,
    SendEvent,
    TerminateEvent,
    WakeupEvent,
)

Event = Union[WakeupEvent, SendEvent, ReceiveEvent, TerminateEvent, AbortEvent]


class Trace:
    """Ordered record of everything that happened in one execution."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def append(self, event: Event) -> None:
        """Record ``event`` (executor use only)."""
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # -- derived views -------------------------------------------------

    def sends_by(self, pid: Hashable) -> List[SendEvent]:
        """All messages sent by ``pid``, in order."""
        return [e for e in self.events if e.kind == KIND_SEND and e.sender == pid]

    def receives_by(self, pid: Hashable) -> List[ReceiveEvent]:
        """All messages received by ``pid``, in order."""
        return [
            e for e in self.events if e.kind == KIND_RECEIVE and e.receiver == pid
        ]

    def sent_values(self, pid: Hashable) -> List[Any]:
        """Values sent by ``pid``, in order."""
        return [e.value for e in self.sends_by(pid)]

    def received_values(self, pid: Hashable) -> List[Any]:
        """Values received by ``pid``, in order."""
        return [e.value for e in self.receives_by(pid)]

    def sent_count(self, pid: Hashable) -> int:
        """Total number of messages sent by ``pid``."""
        return len(self.sends_by(pid))

    def termination_outputs(self) -> Dict[Hashable, Any]:
        """Map pid → output for every processor that terminated."""
        return {
            e.pid: e.output for e in self.events if e.kind == KIND_TERMINATE
        }

    def sent_counter_series(
        self, pids: Optional[Iterable[Hashable]] = None
    ) -> Dict[Hashable, List[int]]:
        """Return ``Sent_i^t`` sampled at every event time.

        For each requested pid, entry ``t`` of the returned list is the
        number of messages that pid had sent after the first ``t`` events
        of the trace. All series share the common event-time axis, so they
        can be compared pointwise (as Lemma D.5 does).
        """
        counters: Dict[Hashable, int] = defaultdict(int)
        watched = set(pids) if pids is not None else None
        series: Dict[Hashable, List[int]] = defaultdict(list)
        tracked = (
            list(watched)
            if watched is not None
            else sorted(
                {e.sender for e in self.events if e.kind == KIND_SEND},
                key=repr,
            )
        )
        for pid in tracked:
            series[pid] = []
        for event in self.events:
            if event.kind == KIND_SEND:
                counters[event.sender] += 1
            for pid in tracked:
                series[pid].append(counters[pid])
        return dict(series)

    def max_sync_gap(self, pids: Optional[Iterable[Hashable]] = None) -> int:
        """Max over time of ``max_i Sent_i^t - min_j Sent_j^t``.

        This is the synchronization measure from the resilience proofs: an
        honest A-LEADuni execution keeps it ≤ 1 + the pipeline slack, the
        cubic attack drives it to Ω(k²), and PhaseAsyncLead's validation
        phases pin it back to O(k).
        """
        series = self.sent_counter_series(pids)
        if not series:
            return 0
        lists = list(series.values())
        gap = 0
        for t in range(len(lists[0])):
            values = [s[t] for s in lists]
            gap = max(gap, max(values) - min(values))
        return gap
