"""Oblivious message schedulers.

The scheduler decides, at each simulator step, which link delivers its
head-of-queue message next. Schedulers are *oblivious* (paper, Section 2):
they see only which links currently hold undelivered messages — never
message contents or processor state — so their choices cannot leak
information to adversaries.

On the unidirectional ring every processor has a single incoming FIFO link,
so all schedulers produce the same local histories; the variety here matters
for general topologies (Section 7) and for stress-testing protocol
implementations against delivery reorderings across links.
"""

import random
from abc import ABC, abstractmethod
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

Link = Tuple[Hashable, Hashable]


class Scheduler(ABC):
    """Picks the next link to deliver from among non-empty links."""

    @abstractmethod
    def choose(self, ready_links: Sequence[Link]) -> Link:
        """Return one element of ``ready_links`` (guaranteed non-empty)."""


class FifoScheduler(Scheduler):
    """Deliver in global send order (approximated by stable link order).

    ``ready_links`` is presented in the order links first became ready, so
    picking the head yields a breadth-first, globally fair delivery order.
    """

    def choose(self, ready_links: Sequence[Link]) -> Link:
        return ready_links[0]


class RoundRobinScheduler(Scheduler):
    """Cycle through links in a fixed rotation for balanced interleavings."""

    def __init__(self) -> None:
        self._last_index = -1

    def choose(self, ready_links: Sequence[Link]) -> Link:
        self._last_index = (self._last_index + 1) % len(ready_links)
        return ready_links[self._last_index]


class RandomScheduler(Scheduler):
    """Uniformly random choice among ready links, from a seeded stream.

    The stream is private to the scheduler; with a fixed seed the execution
    remains exactly reproducible.
    """

    def __init__(self, rng: Optional[random.Random] = None, seed: int = 0):
        self._rng = rng if rng is not None else random.Random(seed)

    def choose(self, ready_links: Sequence[Link]) -> Link:
        return self._rng.choice(list(ready_links))


class LinkPriorityScheduler(Scheduler):
    """Deliver on the lowest-priority-number ready link.

    ``priorities`` maps links to ints (missing links default to 0, ties
    broken by readiness order). This models an adversarially chosen — but
    still oblivious, since it is fixed before the execution — schedule that
    starves some links, the worst case Definition 2.3 quantifies over.
    """

    def __init__(self, priorities: Dict[Link, int]):
        self._priorities = dict(priorities)

    def choose(self, ready_links: Sequence[Link]) -> Link:
        ranked: List[Tuple[int, int, Link]] = [
            (self._priorities.get(link, 0), idx, link)
            for idx, link in enumerate(ready_links)
        ]
        ranked.sort(key=lambda t: (t[0], t[1]))
        return ranked[0][2]
