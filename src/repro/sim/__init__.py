"""Asynchronous message-passing simulator (the paper's LOCAL-model substrate).

The simulator executes a *protocol* — a mapping from processor id to
:class:`~repro.sim.strategy.Strategy` — on a directed communication
:class:`~repro.sim.topology.Topology`. Messages travel over unbounded FIFO
links and are delivered by an *oblivious* scheduler that never inspects
message contents (paper, Section 2). The result is an
:class:`~repro.sim.execution.ExecutionResult` carrying per-processor outputs,
the global outcome (a valid id or ``FAIL``), and a full event trace.
"""

from repro.sim.events import (
    WakeupEvent,
    SendEvent,
    ReceiveEvent,
    TerminateEvent,
    AbortEvent,
)
from repro.sim.trace import Trace
from repro.sim.topology import (
    Topology,
    unidirectional_ring,
    bidirectional_ring,
    line_graph,
    complete_graph,
    star_graph,
)
from repro.sim.strategy import Strategy, Context, SilentStrategy
from repro.sim.scheduler import (
    Scheduler,
    FifoScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    LinkPriorityScheduler,
)
from repro.sim.execution import (
    FAIL,
    ABORT,
    Executor,
    ExecutionResult,
    run_protocol,
)

__all__ = [
    "WakeupEvent",
    "SendEvent",
    "ReceiveEvent",
    "TerminateEvent",
    "AbortEvent",
    "Trace",
    "Topology",
    "unidirectional_ring",
    "bidirectional_ring",
    "line_graph",
    "complete_graph",
    "star_graph",
    "Strategy",
    "Context",
    "SilentStrategy",
    "Scheduler",
    "FifoScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "LinkPriorityScheduler",
    "FAIL",
    "ABORT",
    "Executor",
    "ExecutionResult",
    "run_protocol",
]
