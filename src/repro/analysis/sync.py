"""Synchronization-gap analysis (Section 5 / Lemma D.5, Section 6).

The resilience proofs hinge on how far apart the processors' sent-message
counters ``Sent_i^t`` can drift:

- honest A-LEADuni keeps all processors 1-synchronized;
- a *successful* deviation from A-LEADuni stays ``2k²``-synchronized
  (Lemma D.5) — the cubic attack pushes the gap to ``Θ(k²)``;
- PhaseAsyncLead's phase validation pins the gap back to ``O(k)``, which
  is the whole point of the new protocol.

These helpers extract those gaps from execution traces.
"""

from typing import Dict, Hashable, Iterable, List, Optional

from repro.sim.events import ReceiveEvent, SendEvent
from repro.sim.execution import ExecutionResult


def sync_gap_for(
    result: ExecutionResult, pids: Optional[Iterable[Hashable]] = None
) -> int:
    """Max-over-time spread of sent counters among ``pids`` (default all)."""
    return result.trace.max_sync_gap(pids)


def max_send_lead(result: ExecutionResult, pid: Hashable) -> int:
    """Max over time of ``Sent_pid^t - Recv_pid^t`` (Lemma D.3's measure).

    Lemma D.3 shows that in any *non-failing* deviation from A-LEADuni no
    adversary's send counter leads its receive counter by more than
    ``2k`` (sending much more than received means guessing honest
    secrets, which fails validation w.h.p.). Honest ring processors have
    lead ≤ 1; the attacks' zero-bursts push adversaries to ≈ k.
    """
    sent = received = lead = 0
    for event in result.trace:
        if isinstance(event, SendEvent) and event.sender == pid:
            sent += 1
            lead = max(lead, sent - received)
        elif isinstance(event, ReceiveEvent) and event.receiver == pid:
            received += 1
    return lead


def honest_sync_profile(
    result: ExecutionResult, coalition: Iterable[Hashable]
) -> Dict[str, int]:
    """Gap decomposition of one execution.

    Returns the overall gap, the gap among coalition members only (the
    quantity in Lemma D.5), and the gap among honest processors only.
    """
    coalition = list(coalition)
    coalition_set = set(coalition)
    series = result.trace.sent_counter_series()
    pids: List[Hashable] = list(series.keys())
    honest = [p for p in pids if p not in coalition_set]
    return {
        "overall": result.trace.max_sync_gap(pids),
        "coalition": result.trace.max_sync_gap(coalition) if coalition else 0,
        "honest": result.trace.max_sync_gap(honest) if honest else 0,
    }
