"""Conjecture 4.7 tooling: locating A-LEADuni's resilience frontier.

The paper proves A-LEADuni safe up to O(n^(1/4)) (Thm 5.1) and broken
from 2·n^(1/3) placed adversaries (Thm 4.3), conjecturing the truth sits
at Θ(n^(1/3)) (Conjecture 4.7). :func:`forcing_frontier` searches, per
ring size, for the smallest coalition at which any implemented attack
family forces the outcome — the empirical frontier an experimenter can
track against the conjecture as better attacks are added.
"""

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.attacks.cubic import cubic_attack_protocol
from repro.attacks.equal_spacing import (
    equal_spacing_attack_protocol_unchecked,
)
from repro.attacks.placement import RingPlacement
from repro.sim.execution import run_protocol
from repro.sim.topology import Topology, unidirectional_ring
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class FrontierPoint:
    """The smallest forcing coalition found for one ring size."""

    n: int
    k_min: int
    family: str
    lower_bound: float  # n^(1/4): below this Thm 5.1 proves safety
    conjecture: float  # ~n^(1/3): Conjecture 4.7's guess
    upper_bound: float  # 2·n^(1/3): Thm 4.3 proves forcing

    @property
    def within_gap(self) -> bool:
        """True when the found frontier sits inside the proven gap."""
        return self.lower_bound <= self.k_min <= self.upper_bound + 1


AttackBuilder = Callable[[Topology, int, int], Optional[dict]]


def _try_cubic(ring: Topology, n: int, k: int):
    try:
        return cubic_attack_protocol(ring, RingPlacement.cubic(n, k), 7)
    except ConfigurationError:
        return None


def _try_rushing(ring: Topology, n: int, k: int):
    try:
        pl = RingPlacement.equal_spacing(n, k)
        return equal_spacing_attack_protocol_unchecked(ring, pl, 7)
    except ConfigurationError:
        return None


#: The attack families the search sweeps, in preference order.
FAMILIES: Dict[str, AttackBuilder] = {
    "cubic": _try_cubic,
    "rushing": _try_rushing,
}


def smallest_forcing_coalition(
    n: int, seeds: int = 2, k_max: Optional[int] = None
) -> FrontierPoint:
    """Scan k upward until some family forces the target on all seeds."""
    ring = unidirectional_ring(n)
    if k_max is None:
        k_max = math.isqrt(n) + 2
    for k in range(2, k_max + 1):
        for family, builder in FAMILIES.items():
            protocol = builder(ring, n, k)
            if protocol is None:
                continue
            if all(
                run_protocol(ring, builder(ring, n, k), seed=s).outcome == 7
                for s in range(seeds)
            ):
                return FrontierPoint(
                    n=n,
                    k_min=k,
                    family=family,
                    lower_bound=n ** 0.25,
                    conjecture=n ** (1 / 3),
                    upper_bound=2 * n ** (1 / 3),
                )
    return FrontierPoint(
        n=n,
        k_min=k_max + 1,
        family="none",
        lower_bound=n ** 0.25,
        conjecture=n ** (1 / 3),
        upper_bound=2 * n ** (1 / 3),
    )


def forcing_frontier(
    sizes: List[int], seeds: int = 2
) -> List[FrontierPoint]:
    """The frontier table across ring sizes (the Conjecture 4.7 series)."""
    return [smallest_forcing_coalition(n, seeds=seeds) for n in sizes]
