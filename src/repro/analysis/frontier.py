"""Conjecture 4.7 tooling: locating A-LEADuni's resilience frontier.

The paper proves A-LEADuni safe up to O(n^(1/4)) (Thm 5.1) and broken
from 2·n^(1/3) placed adversaries (Thm 4.3), conjecturing the truth sits
at Θ(n^(1/3)) (Conjecture 4.7). :func:`forcing_frontier` searches, per
ring size, for the smallest coalition at which any implemented attack
family forces the outcome — the empirical frontier an experimenter can
track against the conjecture as better attacks are added.

The per-``(family, k)`` estimation runs through the shared
:class:`~repro.experiments.runner.ExperimentRunner` over the registered
``frontier/*`` scenarios (:mod:`repro.analysis.scenarios`), so the scan
inherits deterministic trial seeding and optional multiprocessing
fan-out — every probe of a scan (all families, all ``k``, all ring
sizes) dispatches through **one** persistent
:class:`~repro.experiments.pool.WorkerPool`, so worker processes spawn
once per scan instead of once per probe. Infeasible placements surface
as :class:`~repro.util.errors.ConfigurationError` from the scenario
builder and simply exclude that family at that ``k``.
"""

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class FrontierPoint:
    """The smallest forcing coalition found for one ring size."""

    n: int
    k_min: int
    family: str
    lower_bound: float  # n^(1/4): below this Thm 5.1 proves safety
    conjecture: float  # ~n^(1/3): Conjecture 4.7's guess
    upper_bound: float  # 2·n^(1/3): Thm 4.3 proves forcing

    @property
    def within_gap(self) -> bool:
        """True when the found frontier sits inside the proven gap."""
        return self.lower_bound <= self.k_min <= self.upper_bound + 1


#: Attack families the search sweeps (scan preference order) — each a
#: registered scenario taking explicit ``n``/``k``/``target`` parameters.
FAMILIES: Dict[str, str] = {
    "cubic": "frontier/cubic",
    "rushing": "frontier/rushing",
}

#: The id every frontier probe tries to force (arbitrary, fixed).
TARGET = 7


def _placement_feasible(spec, params) -> bool:
    """Whether the family has a placement at this grid point at all."""
    try:
        topology = spec.build_topology(params)
        spec.build_protocol(topology, params, random.Random(0))
    except ConfigurationError:
        return False
    return True


def _bounds(n: int) -> Dict[str, float]:
    return {
        "lower_bound": n ** 0.25,
        "conjecture": n ** (1 / 3),
        "upper_bound": 2 * n ** (1 / 3),
    }


def smallest_forcing_coalition(
    n: int,
    seeds: int = 2,
    k_max: Optional[int] = None,
    workers: int = 1,
    pool=None,
) -> FrontierPoint:
    """Scan k upward until some family forces the target on all seeds.

    ``seeds`` is the trial count per probe (one experiment of ``seeds``
    trials through the runner); a family forces at ``k`` when every
    trial ends on the target. All probes of the scan share one worker
    pool — ``pool`` (caller-owned, e.g. one pool for a whole frontier
    table), or a pool the scan's runner creates once and closes at the
    end.
    """
    from repro.experiments.runner import ExperimentRunner
    from repro.experiments.scenario import get_scenario

    if k_max is None:
        k_max = math.isqrt(n) + 2
    with ExperimentRunner(workers=workers, pool=pool) as runner:
        for k in range(2, k_max + 1):
            for family, scenario in FAMILIES.items():
                spec = get_scenario(scenario)
                params = spec.resolve_params({"n": n, "k": k, "target": TARGET})
                if not _placement_feasible(spec, params):
                    continue
                result = runner.run(
                    spec, trials=seeds, params=params, keep_outcomes=False
                )
                if result.trials and result.success_rate == 1.0:
                    return FrontierPoint(
                        n=n, k_min=k, family=family, **_bounds(n)
                    )
    return FrontierPoint(n=n, k_min=k_max + 1, family="none", **_bounds(n))


def forcing_frontier(
    sizes: List[int], seeds: int = 2, workers: int = 1, pool=None
) -> List[FrontierPoint]:
    """The frontier table across ring sizes (the Conjecture 4.7 series).

    One shared worker pool serves every probe of every ring size.
    """
    from repro.experiments.pool import WorkerPool

    own = pool is None
    if own:
        pool = WorkerPool(workers)
    try:
        return [
            smallest_forcing_coalition(n, seeds=seeds, pool=pool)
            for n in sizes
        ]
    finally:
        if own:
            pool.close()
