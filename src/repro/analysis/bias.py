"""Bias and resilience measurement.

The paper's central quantity is the ε of ``ε-k-unbiased``:
``ε = max_j Pr[outcome = j] - 1/n`` under the best adversarial deviation
(Definition after 2.3). These helpers estimate both sides empirically:

- :func:`empirical_bias` — given a (possibly adversarial) protocol
  factory, how far above ``1/n`` the most likely valid outcome sits;
- :func:`attack_success_rate` — for attacks that target a specific ``w``,
  the fraction of runs with ``outcome == w`` (the paper's attacks achieve
  rate 1, i.e. ε = 1 - 1/n).
"""

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional

from repro.analysis.distribution import (
    OutcomeDistribution,
    ProtocolFactory,
    estimate_distribution,
)
from repro.sim.topology import Topology


@dataclass(frozen=True)
class BiasReport:
    """Empirical bias of a protocol under some deviation."""

    n: int
    trials: int
    max_probability: float
    fail_rate: float

    @property
    def epsilon(self) -> float:
        """``max_j Pr[outcome=j] - 1/n`` (clamped at 0 from below)."""
        return max(0.0, self.max_probability - 1.0 / self.n)


def empirical_bias(
    topology: Topology,
    factory: ProtocolFactory,
    trials: int,
    base_seed: int = 0,
    distribution: Optional[OutcomeDistribution] = None,
    workers: int = 1,
) -> BiasReport:
    """Estimate the bias ε of ``factory`` over ``trials`` executions.

    Estimation runs through the :mod:`repro.experiments` runner;
    ``workers > 1`` fans trials out over processes without changing the
    result (see :func:`estimate_distribution` for the picklability
    caveat).
    """
    dist = (
        distribution
        if distribution is not None
        else estimate_distribution(
            topology, factory, trials, base_seed, workers=workers
        )
    )
    return BiasReport(
        n=len(topology),
        trials=dist.trials,
        max_probability=dist.max_probability(),
        fail_rate=dist.fail_rate,
    )


class _TargetFactory:
    """Picklable adapter binding a target id into an attack factory."""

    def __init__(
        self,
        factory_for_target: Callable[[Topology, int], Dict[Hashable, object]],
        target: int,
    ):
        self.factory_for_target = factory_for_target
        self.target = target

    def __call__(self, topology: Topology) -> Dict[Hashable, object]:
        return self.factory_for_target(topology, self.target)


def attack_success_rate(
    topology: Topology,
    factory_for_target: Callable[[Topology, int], Dict[Hashable, object]],
    target: int,
    trials: int,
    base_seed: int = 0,
    workers: int = 1,
) -> float:
    """Fraction of runs in which the attack forces ``outcome == target``."""
    dist = estimate_distribution(
        topology,
        _TargetFactory(factory_for_target, target),
        trials,
        base_seed,
        workers=workers,
    )
    return dist.probability(target)
