"""Honest-segment geometry (Definition 3.1, Figure 1).

Given a coalition placement, the attacks' feasibility is governed entirely
by the segment-length profile ``(l_1..l_k)``: Lemma 4.1 needs
``max l_j ≤ k-1``, the cubic attack needs the arithmetic staircase, and
Theorem C.1's analysis bounds ``max l_j`` for random placements. These
statistics are what experiment F1 tabulates.
"""

from dataclasses import dataclass
from typing import List

from repro.attacks.placement import RingPlacement


@dataclass(frozen=True)
class SegmentStats:
    """Summary of one placement's honest-segment profile."""

    n: int
    k: int
    lengths: tuple
    max_length: int
    min_length: int
    exposed_adversaries: int
    rushing_feasible: bool  # Lemma 4.1 precondition: max l_j <= k-1
    cubic_feasible: bool  # Thm 4.3 staircase constraints

    @property
    def mean_length(self) -> float:
        """Average honest segment length (= (n-k)/k)."""
        return sum(self.lengths) / len(self.lengths)


def segment_statistics(placement: RingPlacement) -> SegmentStats:
    """Compute the Figure-1 quantities for ``placement``."""
    lengths: List[int] = placement.distances()
    k = placement.k
    cubic_ok = lengths[-1] <= k - 1 and all(
        lengths[i] <= lengths[i + 1] + (k - 1) for i in range(k - 1)
    )
    return SegmentStats(
        n=placement.n,
        k=k,
        lengths=tuple(lengths),
        max_length=max(lengths),
        min_length=min(lengths),
        exposed_adversaries=sum(1 for l in lengths if l >= 1),
        rushing_feasible=max(lengths) <= k - 1 and min(lengths) >= 1,
        cubic_feasible=cubic_ok,
    )
