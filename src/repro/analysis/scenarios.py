"""Scenario specs behind the analysis tooling (frontier + Figure 1).

The frontier scenarios expose the two attack families
:func:`repro.analysis.frontier.smallest_forcing_coalition` scans, with
``k`` as an explicit parameter and *unchecked* builders where the search
needs to probe below the proven feasibility threshold. Infeasible
``(n, k)`` combinations raise
:class:`~repro.util.errors.ConfigurationError` from the builder — the
frontier search treats that as "this family has no placement here" and
moves on.

``placement/random-segments`` turns the Figure-1c measurement into a
Monte-Carlo scenario: each trial draws an i.i.d. placement from the
trial's private stream and reports the longest honest segment; success
means the maximum stayed under the Theorem C.1 logarithmic envelope.

Registered here (imported for effect by
:mod:`repro.experiments.catalog`).
"""

import math
import random
from typing import Dict, Optional, Sequence, Tuple

from repro.attacks.cubic import cubic_attack_protocol
from repro.attacks.equal_spacing import (
    equal_spacing_attack_protocol_unchecked,
)
from repro.attacks.placement import RingPlacement
from repro.attacks.random_location import recommended_probability
from repro.analysis.segments import segment_statistics
from repro.experiments.scenario import (
    Params,
    ScenarioSpec,
    forced_target,
    no_valid_ids,
    register_scenario,
    ring_topology,
)
from repro.util.mtcompat import HAVE_NUMPY, mt_random_state
from repro.util.rng import derive_seed

if HAVE_NUMPY:
    import numpy as np


def _frontier_cubic(topo, params, rng):
    placement = RingPlacement.cubic(len(topo), params["k"])
    return cubic_attack_protocol(topo, placement, params["target"])


def _frontier_rushing(topo, params, rng):
    placement = RingPlacement.equal_spacing(len(topo), params["k"])
    return equal_spacing_attack_protocol_unchecked(
        topo, placement, params["target"]
    )


def segment_probability(params: Params) -> float:
    """The placement density: explicit ``p`` or the Thm C.1 half-rate."""
    p = params["p"]
    return p if p is not None else recommended_probability(params["n"]) / 2


def run_random_segments_trial(
    params: Params, registry, max_steps: Optional[int]
) -> Tuple[object, int]:
    """Draw one i.i.d. placement; outcome = longest honest segment."""
    n = params["n"]
    placement = RingPlacement.random_locations(
        n, segment_probability(params), registry.stream("scenario")
    )
    if placement is None:
        return 0, 0  # empty coalition: no segments to expose
    return segment_statistics(placement).max_length, 0


def within_envelope(outcome, params: Params) -> bool:
    """Success predicate: max segment under the ln(n)/p envelope."""
    return outcome <= math.log(params["n"]) / segment_probability(params)


# ----------------------------------------------------------------------
# Batch kernel
# ----------------------------------------------------------------------


def _max_segment_numpy(state, n: int, p: float) -> int:
    """Vectorized trial body: longest honest segment, or 0 if degenerate.

    Mirrors :meth:`RingPlacement.random_locations` (one uniform double
    per non-origin processor, selected where ``< p``) and
    :meth:`RingPlacement.distances` (consecutive gaps minus one, plus
    the wrap-around gap through the origin), with numpy drawing the
    doubles the trial's ``random.Random`` stream would have drawn.
    """
    positions = np.flatnonzero(state.random_sample(n - 1) < p) + 2
    if positions.size < 2:
        return 0
    gaps = np.diff(positions) - 1
    wrap = int(positions[0]) + n - int(positions[-1]) - 1
    return max(int(gaps.max()), wrap)


def _max_segment_python(rng: random.Random, n: int, p: float) -> int:
    """The same trial body off numpy (absent, or a 1-word MT seed)."""
    placement = RingPlacement.random_locations(n, p, rng)
    if placement is None:
        return 0
    return segment_statistics(placement).max_length


def run_random_segments_batch(
    seeds: Sequence[int], params: Params
) -> Optional[Tuple[Dict[object, int], int]]:
    """Fold a chunk of ``placement/random-segments`` trials."""
    if not HAVE_NUMPY:
        return None
    n = params["n"]
    p = segment_probability(params)
    if n < 2 or not 0 <= p <= 1:
        return None  # degenerate draws / invalid p: scalar path decides
    counts: Dict[object, int] = {}
    # One RandomState re-seeded per trial: construction costs ~6x a
    # re-seed, and the streams are bit-identical either way.
    shared = np.random.RandomState(0)
    for seed in seeds:
        scenario_seed = derive_seed(seed, "scenario")
        state = mt_random_state(scenario_seed, into=shared)
        if state is not None:
            longest = _max_segment_numpy(state, n, p)
        else:  # 1-word MT seed: numpy's init diverges, replay exactly
            longest = _max_segment_python(random.Random(scenario_seed), n, p)
        counts[longest] = counts.get(longest, 0) + 1
    return counts, 0


register_scenario(
    ScenarioSpec(
        name="frontier/cubic",
        description="cubic staircase at explicit k (frontier scan family)",
        build_topology=ring_topology,
        build_protocol=_frontier_cubic,
        defaults={"n": 34, "k": 4, "target": 7},
        success=forced_target,
        tags=("frontier", "attack"),
    )
)

register_scenario(
    ScenarioSpec(
        name="frontier/rushing",
        description="equal spacing at explicit k, unchecked (frontier scan)",
        build_topology=ring_topology,
        build_protocol=_frontier_rushing,
        defaults={"n": 36, "k": 6, "target": 7},
        success=forced_target,
        tags=("frontier", "attack"),
    )
)

register_scenario(
    ScenarioSpec(
        name="placement/random-segments",
        description="Figure 1c: longest honest segment of an i.i.d. placement",
        run_trial=run_random_segments_trial,
        run_batch=run_random_segments_batch,
        outcome_size=no_valid_ids,  # outcomes are segment lengths, not ids
        defaults={"n": 256, "p": None},
        success=within_envelope,
        tags=("placement",),
    )
)
