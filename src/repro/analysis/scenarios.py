"""Scenario specs behind the analysis tooling (frontier + Figure 1).

The frontier scenarios expose the two attack families
:func:`repro.analysis.frontier.smallest_forcing_coalition` scans, with
``k`` as an explicit parameter and *unchecked* builders where the search
needs to probe below the proven feasibility threshold. Infeasible
``(n, k)`` combinations raise
:class:`~repro.util.errors.ConfigurationError` from the builder — the
frontier search treats that as "this family has no placement here" and
moves on.

``placement/random-segments`` turns the Figure-1c measurement into a
Monte-Carlo scenario: each trial draws an i.i.d. placement from the
trial's private stream and reports the longest honest segment; success
means the maximum stayed under the Theorem C.1 logarithmic envelope.

Registered here (imported for effect by
:mod:`repro.experiments.catalog`).
"""

import math
from typing import Optional, Tuple

from repro.attacks.cubic import cubic_attack_protocol
from repro.attacks.equal_spacing import (
    equal_spacing_attack_protocol_unchecked,
)
from repro.attacks.placement import RingPlacement
from repro.attacks.random_location import recommended_probability
from repro.analysis.segments import segment_statistics
from repro.experiments.scenario import (
    Params,
    ScenarioSpec,
    forced_target,
    no_valid_ids,
    register_scenario,
    ring_topology,
)


def _frontier_cubic(topo, params, rng):
    placement = RingPlacement.cubic(len(topo), params["k"])
    return cubic_attack_protocol(topo, placement, params["target"])


def _frontier_rushing(topo, params, rng):
    placement = RingPlacement.equal_spacing(len(topo), params["k"])
    return equal_spacing_attack_protocol_unchecked(
        topo, placement, params["target"]
    )


def segment_probability(params: Params) -> float:
    """The placement density: explicit ``p`` or the Thm C.1 half-rate."""
    p = params["p"]
    return p if p is not None else recommended_probability(params["n"]) / 2


def run_random_segments_trial(
    params: Params, registry, max_steps: Optional[int]
) -> Tuple[object, int]:
    """Draw one i.i.d. placement; outcome = longest honest segment."""
    n = params["n"]
    placement = RingPlacement.random_locations(
        n, segment_probability(params), registry.stream("scenario")
    )
    if placement is None:
        return 0, 0  # empty coalition: no segments to expose
    return segment_statistics(placement).max_length, 0


def within_envelope(outcome, params: Params) -> bool:
    """Success predicate: max segment under the ln(n)/p envelope."""
    return outcome <= math.log(params["n"]) / segment_probability(params)


register_scenario(
    ScenarioSpec(
        name="frontier/cubic",
        description="cubic staircase at explicit k (frontier scan family)",
        build_topology=ring_topology,
        build_protocol=_frontier_cubic,
        defaults={"n": 34, "k": 4, "target": 7},
        success=forced_target,
        tags=("frontier", "attack"),
    )
)

register_scenario(
    ScenarioSpec(
        name="frontier/rushing",
        description="equal spacing at explicit k, unchecked (frontier scan)",
        build_topology=ring_topology,
        build_protocol=_frontier_rushing,
        defaults={"n": 36, "k": 6, "target": 7},
        success=forced_target,
        tags=("frontier", "attack"),
    )
)

register_scenario(
    ScenarioSpec(
        name="placement/random-segments",
        description="Figure 1c: longest honest segment of an i.i.d. placement",
        run_trial=run_random_segments_trial,
        outcome_size=no_valid_ids,  # outcomes are segment lengths, not ids
        defaults={"n": 256, "p": None},
        success=within_envelope,
        tags=("placement",),
    )
)
