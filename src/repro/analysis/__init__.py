"""Measurement toolkit: outcome distributions, bias, synchronization.

These are the instruments behind every experiment in EXPERIMENTS.md:

- :mod:`repro.analysis.distribution` — Monte-Carlo outcome histograms,
  chi-square uniformity tests, fail rates;
- :mod:`repro.analysis.bias` — the paper's ε (``max_j Pr[outcome=j] - 1/n``)
  and attack success probability estimation;
- :mod:`repro.analysis.sync` — ``Sent_i^t`` synchronization-gap series
  (Section 5's ``m``-synchronization measure);
- :mod:`repro.analysis.segments` — honest-segment geometry statistics
  (Figure 1's quantities).
"""

from repro.analysis.distribution import (
    OutcomeDistribution,
    estimate_distribution,
    chi_square_uniformity,
)
from repro.analysis.bias import (
    BiasReport,
    empirical_bias,
    attack_success_rate,
)
from repro.analysis.sync import sync_gap_for, honest_sync_profile, max_send_lead
from repro.analysis.segments import segment_statistics, SegmentStats
from repro.analysis.lemma33 import Lemma33Verdict, lemma33_verdict, honest_secret
from repro.analysis.frontier import (
    FrontierPoint,
    forcing_frontier,
    smallest_forcing_coalition,
)
from repro.analysis.stats import (
    Proportion,
    proportion,
    proportions_differ,
    wilson_interval,
)
from repro.analysis.render import render_sync_timeline, trace_to_dicts

__all__ = [
    "OutcomeDistribution",
    "estimate_distribution",
    "chi_square_uniformity",
    "BiasReport",
    "empirical_bias",
    "attack_success_rate",
    "sync_gap_for",
    "honest_sync_profile",
    "max_send_lead",
    "segment_statistics",
    "SegmentStats",
    "Lemma33Verdict",
    "lemma33_verdict",
    "honest_secret",
    "FrontierPoint",
    "forcing_frontier",
    "smallest_forcing_coalition",
    "Proportion",
    "proportion",
    "proportions_differ",
    "wilson_interval",
    "render_sync_timeline",
    "trace_to_dicts",
]
