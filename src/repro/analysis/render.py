"""Execution observability: trace export and ASCII timelines.

Two affordances a downstream user debugging a deviation needs:

- :func:`trace_to_dicts` — JSON-serializable event stream for external
  tooling;
- :func:`render_sync_timeline` — an ASCII grid of ``Sent_i^t`` sampled
  at fixed intervals, which makes the attacks' information flow visible
  at a glance (the cubic attack's zero-burst staircase literally shows
  up as a staircase).
"""

from typing import Any, Dict, Hashable, List, Optional, Sequence

from repro.sim.events import (
    AbortEvent,
    ReceiveEvent,
    SendEvent,
    TerminateEvent,
    WakeupEvent,
)
from repro.sim.execution import ExecutionResult


def trace_to_dicts(result: ExecutionResult) -> List[Dict[str, Any]]:
    """Flatten the trace into JSON-serializable dicts (stable keys)."""
    rows: List[Dict[str, Any]] = []
    for event in result.trace:
        if isinstance(event, WakeupEvent):
            rows.append({"t": event.time, "type": "wakeup", "pid": event.pid})
        elif isinstance(event, SendEvent):
            rows.append(
                {
                    "t": event.time,
                    "type": "send",
                    "from": event.sender,
                    "to": event.receiver,
                    "value": repr(event.value),
                    "seq": event.seq,
                }
            )
        elif isinstance(event, ReceiveEvent):
            rows.append(
                {
                    "t": event.time,
                    "type": "recv",
                    "from": event.sender,
                    "to": event.receiver,
                    "value": repr(event.value),
                    "seq": event.seq,
                }
            )
        elif isinstance(event, TerminateEvent):
            rows.append(
                {
                    "t": event.time,
                    "type": "terminate",
                    "pid": event.pid,
                    "output": repr(event.output),
                }
            )
        elif isinstance(event, AbortEvent):
            rows.append(
                {
                    "t": event.time,
                    "type": "abort",
                    "pid": event.pid,
                    "reason": event.reason,
                }
            )
    return rows


def render_sync_timeline(
    result: ExecutionResult,
    pids: Optional[Sequence[Hashable]] = None,
    columns: int = 16,
) -> str:
    """ASCII grid: rows = processors, columns = sampled ``Sent_i^t``.

    Each cell shows the processor's cumulative send count at that sample
    point; a trailing column reports the max synchronization gap. Sample
    points are spread evenly over the event timeline.
    """
    series = result.trace.sent_counter_series(pids)
    if not series:
        return "(no sends recorded)"
    ordered = sorted(series.keys(), key=repr)
    length = len(next(iter(series.values())))
    if length == 0:
        return "(empty timeline)"
    points = [
        min(length - 1, (i * (length - 1)) // max(1, columns - 1))
        for i in range(min(columns, length))
    ]
    width = max(4, len(str(max(max(s) for s in series.values()))) + 1)
    header = "pid".ljust(8) + "".join(
        f"t{p}".rjust(width) for p in points
    )
    lines = [header]
    for pid in ordered:
        cells = "".join(str(series[pid][p]).rjust(width) for p in points)
        lines.append(f"{str(pid):<8}{cells}")
    lines.append(f"max sync gap: {result.trace.max_sync_gap(pids)}")
    return "\n".join(lines)
