"""Lemma 3.3, executable: when does a deviation from A-LEADuni succeed?

The lemma characterizes non-failing executions by three conditions on the
adversaries' outgoing traffic:

1. every exposed adversary sends (at least) ``n`` messages — the paper
   says exactly ``n``; in our executor extra messages past the honest
   processors' ``n`` receives are silently dropped, so the effective
   condition is on the *first* ``n``;
2. the sums of the first ``n`` outgoing messages of all exposed
   adversaries agree modulo ``n``;
3. for every adversary ``a_j``, its last ``l_j`` (of the first ``n``)
   outgoing messages are the secrets of its honest segment ``I_j`` in
   ring-reversed order (far end first, immediate successor last).

:func:`lemma33_verdict` evaluates the three conditions on a finished
execution trace and cross-checks the lemma's iff against the actual
outcome; tests fuzz deviations against it.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.attacks.placement import RingPlacement
from repro.sim.execution import FAIL, ExecutionResult


@dataclass(frozen=True)
class Lemma33Verdict:
    """Evaluation of the three conditions plus the lemma's iff check."""

    sends_enough: bool  # condition 1
    sums_agree: bool  # condition 2
    replays_correct: bool  # condition 3
    outcome_valid: bool
    consistent_with_lemma: bool
    details: tuple

    @property
    def conditions_hold(self) -> bool:
        return self.sends_enough and self.sums_agree and self.replays_correct


def honest_secret(result: ExecutionResult, pid: int) -> Optional[int]:
    """An honest A-LEADuni processor's secret is its first sent value."""
    sent = result.trace.sent_values(pid)
    return sent[0] if sent else None


def lemma33_verdict(
    result: ExecutionResult, placement: RingPlacement
) -> Lemma33Verdict:
    """Evaluate Lemma 3.3's conditions on a finished execution."""
    n = placement.n
    distances = placement.distances()
    details: List[str] = []

    sends_enough = True
    sums: Dict[int, int] = {}
    replays_correct = True
    for j, pid in enumerate(placement.positions):
        l_j = distances[j]
        sent = result.trace.sent_values(pid)
        if l_j >= 1 and len(sent) < n:
            sends_enough = False
            details.append(f"a_{j+1} (pid {pid}) sent only {len(sent)} < {n}")
            continue
        first_n = sent[:n]
        if l_j >= 1:
            sums[pid] = sum(int(v) % n for v in first_n) % n
        if l_j >= 1:
            expected = []
            for h in reversed(placement.segment(j)):
                secret = honest_secret(result, h)
                expected.append(secret)
            actual = [int(v) % n for v in first_n[n - l_j :]]
            if actual != expected:
                replays_correct = False
                details.append(
                    f"a_{j+1} (pid {pid}) replay mismatch: {actual} != {expected}"
                )

    sums_agree = len(set(sums.values())) <= 1
    if not sums_agree:
        details.append(f"outgoing sums differ: {sums}")

    outcome_valid = result.outcome != FAIL
    conditions = sends_enough and sums_agree and replays_correct
    return Lemma33Verdict(
        sends_enough=sends_enough,
        sums_agree=sums_agree,
        replays_correct=replays_correct,
        outcome_valid=outcome_valid,
        consistent_with_lemma=(conditions == outcome_valid),
        details=tuple(details),
    )
