"""Statistical helpers for experiment reporting.

Success probabilities in the experiments are Monte-Carlo estimates; these
helpers attach Wilson confidence intervals so EXPERIMENTS.md rows can be
read with error bars, and provide the two-proportion comparison used when
claiming one configuration beats another.
"""

import math
from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Proportion:
    """A binomial estimate with its Wilson interval."""

    successes: int
    trials: int
    low: float
    high: float

    @property
    def estimate(self) -> float:
        return self.successes / self.trials if self.trials else 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.estimate:.3f} [{self.low:.3f}, {self.high:.3f}] "
            f"({self.successes}/{self.trials})"
        )


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Better behaved than the normal approximation at the extremes (0% and
    100% success), which is exactly where attack experiments live.
    """
    if trials <= 0:
        return (0.0, 1.0)
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} out of range 0..{trials}")
    p = successes / trials
    denom = 1 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denom
    )
    low = max(0.0, center - margin)
    high = min(1.0, center + margin)
    # Guard float rounding at the exact extremes so the interval always
    # contains the point estimate.
    if successes == trials:
        high = 1.0
    if successes == 0:
        low = 0.0
    return (low, high)


def proportion(successes: int, trials: int, z: float = 1.96) -> Proportion:
    """Bundle a count with its Wilson interval."""
    low, high = wilson_interval(successes, trials, z)
    return Proportion(successes, trials, low, high)


def proportions_differ(
    a: Proportion, b: Proportion, z: float = 1.96
) -> bool:
    """Two-proportion z-test at the given level (True = differ).

    Conservative pooled-variance version; used by ablation benches when
    claiming configuration A beats configuration B.
    """
    if a.trials == 0 or b.trials == 0:
        return False
    pa, pb = a.estimate, b.estimate
    pooled = (a.successes + b.successes) / (a.trials + b.trials)
    if pooled in (0.0, 1.0):
        return pa != pb
    se = math.sqrt(pooled * (1 - pooled) * (1 / a.trials + 1 / b.trials))
    return abs(pa - pb) / se > z
