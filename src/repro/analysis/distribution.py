"""Monte-Carlo estimation of outcome distributions.

An FLE protocol must elect every id with probability exactly ``1/n``
(Section 2). These helpers run a protocol factory many times with
independent seeds, histogram the outcomes, and test uniformity with a
chi-square statistic (scipy when available, plain implementation
otherwise, so the core library stays dependency-free).

Estimation delegates to the :mod:`repro.experiments` runner: trials run
with trace recording off (the executor fast path) and can fan out over
worker processes, while the per-trial seed derivation is unchanged from
the original serial loop — so historical results are preserved exactly.
"""

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Optional

from repro.sim.execution import FAIL
from repro.sim.topology import Topology

#: A protocol factory: builds a fresh strategy vector per execution.
ProtocolFactory = Callable[[Topology], Dict[Hashable, object]]


@dataclass
class OutcomeDistribution:
    """Histogram of outcomes over repeated executions."""

    n: int
    trials: int
    counts: Counter = field(default_factory=Counter)

    @property
    def fail_count(self) -> int:
        """Number of executions with outcome ``FAIL``."""
        return self.counts.get(FAIL, 0)

    @property
    def fail_rate(self) -> float:
        """Fraction of executions that failed."""
        return self.fail_count / self.trials if self.trials else 0.0

    def probability(self, outcome) -> float:
        """Empirical ``Pr[outcome]``."""
        return self.counts.get(outcome, 0) / self.trials if self.trials else 0.0

    def max_probability(self) -> float:
        """``max_j Pr[outcome = j]`` over valid ids only (0.0 when the
        distribution has no valid-id range, i.e. ``n == 0`` — scenarios
        whose outcomes are not election ids)."""
        valid = [self.counts.get(j, 0) for j in range(1, self.n + 1)]
        if not valid or not self.trials:
            return 0.0
        return max(valid) / self.trials

    def valid_counts(self) -> Dict[int, int]:
        """Counts restricted to valid ids ``1..n`` (zeros included)."""
        return {j: self.counts.get(j, 0) for j in range(1, self.n + 1)}


class _FixedTopology:
    """Picklable topology factory closing over one prebuilt topology."""

    def __init__(self, topology: Topology):
        self.topology = topology

    def __call__(self, params) -> Topology:
        return self.topology


class _FactoryProtocol:
    """Picklable adapter from the legacy one-argument protocol factory."""

    def __init__(self, factory: ProtocolFactory):
        self.factory = factory

    def __call__(self, topology, params, rng):
        return self.factory(topology)


def estimate_distribution(
    topology: Topology,
    factory: ProtocolFactory,
    trials: int,
    base_seed: int = 0,
    workers: int = 1,
    max_steps: Optional[int] = None,
    pool=None,
) -> OutcomeDistribution:
    """Run ``factory`` ``trials`` times with derived seeds and histogram.

    Trial ``t`` runs from the registry seed derived from
    ``(base_seed, t)`` — the same derivation at any ``workers`` count, so
    the histogram is reproducible however the work is distributed.
    ``workers > 1`` requires ``topology`` and ``factory`` to be picklable
    (module-level factories such as ``alead_uni_protocol`` are; ad-hoc
    lambdas should stay at ``workers=1``). Only the histogram is wanted
    here, so chunks fold inside the workers and IPC carries counters,
    not per-trial outcomes; a shared ``pool`` amortises worker spawn
    across repeated estimates.
    """
    from repro.experiments.runner import ExperimentRunner
    from repro.experiments.scenario import ScenarioSpec

    spec = ScenarioSpec(
        name="adhoc/estimate-distribution",
        description="legacy protocol-factory distribution estimate",
        build_topology=_FixedTopology(topology),
        build_protocol=_FactoryProtocol(factory),
    )
    with ExperimentRunner(workers=workers, max_steps=max_steps, pool=pool) as runner:
        return runner.run(
            spec, trials, base_seed=base_seed, keep_outcomes=False
        ).distribution


def chi_square_uniformity(dist: OutcomeDistribution) -> float:
    """p-value of the chi-square test that valid outcomes are uniform.

    ``FAIL`` outcomes are excluded from the test (an honest run never
    fails; attack runs are evaluated by other means). Returns 1.0 when
    there are no valid outcomes to test.
    """
    counts = list(dist.valid_counts().values())
    total = sum(counts)
    if total == 0:
        return 1.0
    expected = total / dist.n
    statistic = sum((c - expected) ** 2 / expected for c in counts)
    dof = dist.n - 1
    try:
        from scipy.stats import chi2

        return float(chi2.sf(statistic, dof))
    except ImportError:  # pragma: no cover - scipy present in this env
        return _chi2_sf(statistic, dof)


def _chi2_sf(statistic: float, dof: int) -> float:
    """Survival function of chi-square via the regularized upper gamma.

    Wilson-Hilferty approximation — accurate enough for pass/fail
    uniformity thresholds when scipy is unavailable.
    """
    if statistic <= 0:
        return 1.0
    z = ((statistic / dof) ** (1.0 / 3.0) - (1 - 2.0 / (9 * dof))) / math.sqrt(
        2.0 / (9 * dof)
    )
    return 0.5 * math.erfc(z / math.sqrt(2.0))
