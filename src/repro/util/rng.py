"""Deterministic randomness management.

Every source of randomness in the library flows through a single
:class:`RngRegistry` so that executions are exactly reproducible from one
integer seed. Each processor (and the scheduler) receives an independent
``random.Random`` stream derived from the registry seed and a stable label,
mirroring the paper's model where each processor owns an infinite private
random string.
"""

import hashlib
import random
from typing import Dict, Optional


def derive_seed(base_seed: int, label: str) -> int:
    """Derive a child seed from ``base_seed`` and a stable string label.

    Uses BLAKE2b so distinct labels give statistically independent streams
    and the derivation is stable across Python versions (unlike ``hash``).
    """
    digest = hashlib.blake2b(
        f"{base_seed}:{label}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class RngRegistry:
    """Factory for named, reproducible ``random.Random`` streams.

    Parameters
    ----------
    seed:
        Master seed. ``None`` draws a fresh random seed (non-reproducible,
        but the drawn value is kept in ``.seed`` so it can be reported).
    """

    def __init__(self, seed: Optional[int] = None):
        if seed is None:
            # repro-lint: allow[R102] explicit seed=None opt-in: non-reproducible by contract, and the drawn seed is recorded on .seed
            seed = random.SystemRandom().randrange(2**63)
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, label: str) -> random.Random:
        """Return the stream for ``label``, creating it on first use.

        Repeated calls with the same label return the *same* stream object,
        so consuming from it advances shared state — exactly what a
        processor's private random string should do.
        """
        if label not in self._streams:
            self._streams[label] = random.Random(derive_seed(self.seed, label))
        return self._streams[label]

    def spawn(self, label: str) -> "RngRegistry":
        """Return a child registry with an independent derived master seed."""
        return RngRegistry(derive_seed(self.seed, f"spawn:{label}"))
