"""CPython-faithful Mersenne-Twister streams for vectorized kernels.

Batch kernels (see :attr:`repro.experiments.scenario.ScenarioSpec.run_batch`)
must reproduce the scalar path's randomness *bit for bit*: trial ``i`` of an
experiment always draws from ``random.Random`` streams derived by
:func:`repro.util.rng.derive_seed`, and a kernel that vectorizes the trial
must consume exactly the same underlying MT19937 output.

``numpy.random.RandomState`` runs the same generator, and for multi-word
seeds both libraries initialise it with the same ``init_by_array`` routine
over the seed's little-endian 32-bit words — so
``RandomState(words(seed)).random_sample(m)`` is bit-identical to ``m``
calls of ``random.Random(seed).random()``. The one divergence is a seed
that fits in a single 32-bit word: CPython still uses ``init_by_array``
on the 1-word key while numpy falls back to ``init_genrand``, and the
streams differ. :func:`mt_random_state` therefore returns ``None`` for
seeds below ``2**32`` and callers fall back to ``random.Random`` for that
trial — a ~``2**-32`` event under BLAKE2b-derived 64-bit seeds, so the
vectorized path covers essentially every trial while staying exact for
all of them.
"""

from typing import Optional

try:  # gate: environments without numpy keep the scalar path working
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

#: Whether vectorized kernels can run at all on this interpreter.
HAVE_NUMPY = _np is not None


def mt_key_words(seed: int):
    """The seed's little-endian 32-bit words — CPython's init_by_array key."""
    if seed == 0:
        return [0]
    words = []
    s = seed
    while s:
        words.append(s & 0xFFFFFFFF)
        s >>= 32
    return words


def mt_random_state(
    seed: int, into: Optional["_np.random.RandomState"] = None
) -> Optional["_np.random.RandomState"]:
    """A ``RandomState`` bit-identical to ``random.Random(seed)``, or None.

    ``None`` means "no exact vectorized stream exists here" — numpy is
    absent, or the seed fits one 32-bit word (where numpy's scalar-seed
    path diverges from CPython's). Callers must then fall back to
    ``random.Random(seed)`` for that stream; both paths produce the same
    doubles whenever this function does return a state.

    ``into`` re-seeds an existing state in place instead of constructing
    a fresh one (and returns it): ``RandomState`` construction costs
    ~6x a re-seed, so per-trial loops should allocate one state and pass
    it back in. ``into`` is untouched when this returns ``None``.
    """
    if _np is None or seed < 2**32:
        return None
    key = _np.array(mt_key_words(seed), dtype=_np.int64)
    if into is None:
        return _np.random.RandomState(key)
    into.seed(key)
    return into
