"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with one ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A simulation, protocol, or attack was configured inconsistently.

    Examples: a ring of size 0, a coalition referencing unknown processor
    ids, an attack placed on a topology it does not support.
    """


class SimulationError(ReproError):
    """The simulator reached an internal inconsistency.

    This indicates a bug in the simulator or a strategy that violated the
    execution model (e.g. sending on a non-existent link), not a legitimate
    protocol failure — protocol failures are modelled as ``FAIL`` outcomes,
    never as exceptions.
    """


class ProtocolViolation(ReproError):
    """A strategy performed an action the model forbids.

    Raised when a strategy tries to act after terminating, sends to a
    non-neighbour, or otherwise steps outside the LOCAL model. Adversarial
    *message content* is always legal; only model violations raise.
    """
