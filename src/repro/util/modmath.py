"""Modular arithmetic helpers used by the ring protocols.

The paper works with secret values in ``[n] = {1..n}`` summed modulo ``n``;
we represent values as residues in ``{0, .., n-1}`` internally and treat the
elected id as ``sum mod n`` with 0 mapping onto processor id ``n`` where ids
are 1-based. All helpers here are pure functions on ints.
"""

from typing import Iterable


def canonical_mod(value: int, modulus: int) -> int:
    """Reduce ``value`` into ``{0, .., modulus-1}``.

    Python's ``%`` already yields non-negative residues for positive moduli;
    this wrapper exists to validate the modulus and to make intent explicit
    at call sites.
    """
    if modulus <= 0:
        raise ValueError(f"modulus must be positive, got {modulus}")
    return value % modulus


def mod_sum(values: Iterable[int], modulus: int) -> int:
    """Sum ``values`` modulo ``modulus``."""
    total = 0
    for v in values:
        total += v
    return canonical_mod(total, modulus)


def mod_sub(a: int, b: int, modulus: int) -> int:
    """Return ``a - b (mod modulus)`` as a canonical residue."""
    return canonical_mod(a - b, modulus)
