"""Shared utilities: errors, modular arithmetic, and RNG management."""

from repro.util.errors import (
    ReproError,
    SimulationError,
    ProtocolViolation,
    ConfigurationError,
)
from repro.util.modmath import mod_sum, mod_sub, canonical_mod
from repro.util.rng import RngRegistry, derive_seed

__all__ = [
    "ReproError",
    "SimulationError",
    "ProtocolViolation",
    "ConfigurationError",
    "mod_sum",
    "mod_sub",
    "canonical_mod",
    "RngRegistry",
    "derive_seed",
]
