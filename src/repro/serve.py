"""The estimate service: stored results first, trials only on a miss.

``python -m repro serve --db results.db`` puts a long-running HTTP
front end (stdlib ``http.server`` — no new dependencies) over a
:class:`~repro.experiments.store.ResultStore`, so consumers of the
reproduction ask one question —

    GET /estimate?scenario=attack/basic-cheat&ci_width=0.1&n=16&target=5

— and never care whether the answer was measured last night or must be
measured now:

- **Cache hit:** some completed row for the (scenario, canonical
  params) point already pins the success rate to within the requested
  ``ci_width`` (the Wilson interval from its stored counters is narrow
  enough — the same
  :func:`~repro.experiments.budget.precision_satisfied` rule the
  ``wilson-width`` budget policy stops on). The stored row is returned
  without dispatching a single trial; ``"source": "store"``.
- **Cache miss:** the service runs one adaptive-budget campaign point
  (``trials=None`` + a :class:`WilsonWidthPolicy` at the requested
  width) on its shared :class:`~repro.experiments.pool.WorkerPool`,
  persists the converged row to the store, and returns it;
  ``"source": "computed"``. Identical queries arriving while the point
  runs queue behind that point's lock and are answered from the store;
  queries for *different* cold points take different locks and compute
  concurrently on the shared pool.
- **Read-only (``--read-only``):** a miss is refused with HTTP 409
  instead of computed — the mode for pointing the service at a store
  some other process owns.

Endpoints: ``GET /estimate`` (query string: ``scenario``, ``ci_width``,
every other key a parameter literal — same grammar as ``--param``;
repeated keys and blank values are rejected with 400 rather than
silently last-winning or vanishing), ``POST /estimate`` (JSON body
``{"scenario": ..., "ci_width": ..., "params": {...}}``),
``GET /scenarios``, ``GET /healthz``, and ``GET /metrics`` (Prometheus
text format — store hit/miss counters, trials/sec, in-flight computes,
pool chunk counters, per-scenario EWMA cost, client disconnects).
Errors: 400 for malformed queries, 404 for unknown paths, 409 for a
read-only refusal.
"""

import json
import sys
import threading
from http.server import ThreadingHTTPServer
from typing import Any, Dict, Mapping, Optional
from urllib.parse import parse_qsl, urlparse

from repro.analysis.stats import wilson_interval
from repro.experiments.budget import WilsonWidthPolicy, precision_satisfied
from repro.experiments.campaign import CampaignPoint, run_campaign
from repro.experiments.chunking import AdaptiveChunker
from repro.experiments.pool import WorkerPool
from repro.experiments.scenario import get_scenario, scenario_names
from repro.experiments.store import ResultStore
from repro.experiments.sweep import coerce_param
from repro.httpd import JsonRequestHandler, bind_handler
from repro.metrics import MetricsRegistry, ThroughputMeter
from repro.util.errors import ConfigurationError

#: Default adaptive bounds for cold queries (overridable per service).
DEFAULT_MIN_TRIALS = 32
DEFAULT_MAX_TRIALS = 100_000


class ComputeRefused(Exception):
    """A cold query hit a read-only service: nothing stored satisfies
    the requested precision and computing is disabled."""


class EstimateService:
    """The query layer: one store, one shared pool, one precision rule.

    Thread-safe by construction: the store serialises its connection
    internally, and trial-running is serialised **per point** — a
    refcounted lock table keyed by the adaptive point's resume key
    ``(scenario, canonical params, budget key)`` means identical
    in-flight queries still coalesce (whoever waited re-probes the
    store before computing; their answer usually just arrived), while
    queries for distinct cold points hold distinct locks and run their
    campaigns concurrently against the shared pool —
    ``multiprocessing.Pool`` submission is thread-safe, and each
    campaign drains its own results queue. One shared
    :class:`~repro.experiments.chunking.AdaptiveChunker` sizes every
    compute's chunks, so each request sharpens the cost model the next
    one schedules by.

    Every service owns a :class:`~repro.metrics.MetricsRegistry`
    (``self.metrics``) rendered by ``GET /metrics``: store hits/misses,
    refusals, trials run and trials/sec, in-flight computes (the lock
    table's live size), the shared pool's chunk counters, per-scenario
    EWMA cost from the chunker, and client disconnects counted by the
    HTTP layer.
    """

    #: Lock discipline, checked by ``python -m repro lint`` (R201).
    _GUARDED_BY = {"_pool": "_pool_lock", "_locks": "_locks_guard"}

    def __init__(
        self,
        store: ResultStore,
        workers: int = 1,
        read_only: bool = False,
        min_trials: int = DEFAULT_MIN_TRIALS,
        max_trials: int = DEFAULT_MAX_TRIALS,
        base_seed: int = 0,
        z: float = 1.96,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.store = store
        self.workers = workers
        self.read_only = read_only or store.read_only
        self.min_trials = min_trials
        self.max_trials = max_trials
        self.base_seed = base_seed
        self.z = z
        self._pool: Optional[WorkerPool] = None
        self._pool_lock = threading.Lock()
        # Per-point compute locks: key -> [lock, waiter refcount]. The
        # guard covers only table bookkeeping; the per-key lock is held
        # across the (re-probe, compute, persist) critical section.
        self._locks: Dict[str, list] = {}
        self._locks_guard = threading.Lock()
        self._chunker = AdaptiveChunker()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._wire_metrics()

    def _wire_metrics(self) -> None:
        metrics = self.metrics
        self._hits = metrics.counter(
            "repro_store_hits_total",
            "Estimates answered from a stored row without running trials",
        )
        self._misses = metrics.counter(
            "repro_store_misses_total",
            "Estimates that had to compute (no stored row was precise enough)",
        )
        self._refusals = metrics.counter(
            "repro_compute_refused_total",
            "Cold estimates refused because the service is read-only",
        )
        self._trials_total = metrics.counter(
            "repro_trials_total", "Trials run by this process"
        )
        self.disconnects = metrics.counter(
            "repro_http_disconnects_total",
            "Clients that hung up before the response was fully written",
        )
        if self.store.observer is None:
            appends = metrics.counter(
                "repro_store_appends_total",
                "Rows offered to the results store, by append outcome",
            )
            self.store.observer = lambda outcome: appends.inc(outcome=outcome)
        self._meter = ThroughputMeter()
        rate = metrics.gauge(
            "repro_trials_per_second",
            "Trials folded over the last sliding window",
        )
        inflight = metrics.gauge(
            "repro_inflight_computes",
            "Points currently holding or queued on a compute lock",
        )
        pool_workers = metrics.gauge(
            "repro_pool_workers", "Configured worker-process count"
        )
        pool_alive = metrics.gauge(
            "repro_pool_alive", "Whether the shared worker pool is started"
        )
        chunks = metrics.counter(
            "repro_pool_chunks_total",
            "Chunks through the shared pool, by state",
        )
        cost = metrics.gauge(
            "repro_per_trial_seconds",
            "EWMA per-trial seconds by scenario (observed cost model)",
        )

        def scrape() -> None:
            rate.set(self._meter.rate())
            with self._locks_guard:
                inflight.set(len(self._locks))
            pool_workers.set(self.workers)
            with self._pool_lock:
                pool = self._pool
            pool_alive.set(0 if pool is None else 1)
            if pool is not None:
                for state, total in pool.counters().items():
                    chunks.set_total(total, state=state)
            for scenario in self._chunker.scenarios():
                per = self._chunker.per_trial_seconds(scenario)
                if per is not None:
                    cost.set(per, scenario=scenario)

        metrics.collect(scrape)

    # -- the one question ----------------------------------------------

    def estimate(
        self, scenario: str, params: Mapping[str, Any], ci_width: float
    ) -> Dict[str, Any]:
        """Answer ``estimate(scenario, params, ci_width)`` (see module
        docstring). Raises :class:`ConfigurationError` for malformed
        requests and :class:`ComputeRefused` for a read-only miss."""
        if (
            isinstance(ci_width, bool)
            or not isinstance(ci_width, (int, float))
            or not 0.0 < ci_width <= 1.0
        ):
            raise ConfigurationError(
                f"ci_width must be in (0, 1], got {ci_width!r}"
            )
        spec = get_scenario(scenario)  # raises on unknown scenarios
        resolved = spec.resolve_params(dict(params or {}))
        cached = self._cached(spec.name, resolved, ci_width)
        if cached is not None:
            self._hits.inc()
            return cached
        if self.read_only:
            self._refusals.inc()
            raise ComputeRefused(
                "no stored row satisfies the requested precision and the "
                "service is read-only"
            )
        key = self._point(spec.name, resolved, ci_width).key()
        entry = self._checkout_lock(key)
        entry[0].acquire()
        try:
            # Re-probe: an identical query that held the lock first has
            # usually just persisted exactly the row this one needs.
            # Distinct points hold distinct locks, so a cold grid of
            # queries computes concurrently instead of single-file.
            cached = self._cached(spec.name, resolved, ci_width)
            if cached is not None:
                self._hits.inc()
                return cached
            self._misses.inc()
            row = self._compute(spec.name, resolved, ci_width)
            return self._response(row, ci_width, source="computed")
        finally:
            entry[0].release()
            self._checkin_lock(key, entry)

    # -- internals -----------------------------------------------------

    def _checkout_lock(self, key: str) -> list:
        """The point's ``[lock, refcount]`` entry, refcount bumped. The
        bump happens under the table guard *before* anyone blocks on the
        lock, so a nonzero refcount proves the entry is still live and
        zero proves no thread holds or wants it."""
        with self._locks_guard:
            entry = self._locks.get(key)
            if entry is None:
                entry = self._locks[key] = [threading.Lock(), 0]
            entry[1] += 1
            return entry

    def _checkin_lock(self, key: str, entry: list) -> None:
        with self._locks_guard:
            entry[1] -= 1
            if entry[1] == 0:
                # Last interested thread: drop the entry so the table
                # tracks in-flight points, not the whole query history.
                del self._locks[key]

    def _policy(self, ci_width: float) -> WilsonWidthPolicy:
        return WilsonWidthPolicy(
            ci_width=ci_width,
            min_trials=min(self.min_trials, self.max_trials),
            max_trials=self.max_trials,
            z=self.z,
        )

    def _cached(
        self, scenario: str, params: Mapping[str, Any], ci_width: float
    ) -> Optional[Dict[str, Any]]:
        """The stored answer, if any stored row is good enough.

        Any completed row for the point whose Wilson width is within
        ``ci_width`` qualifies — whatever run produced it (fixed-trials
        sweep, another budget, another seed): precision is a property of
        the counters, not of how they were requested. The narrowest
        (most-trials) qualifying row wins. Failing that, a row stored
        under *exactly* the adaptive key this query would run is also
        returned — it ran to the policy ceiling without converging, and
        re-running it would burn the same trials to learn the same thing
        (the response carries ``"satisfied": false`` so the caller
        knows).
        """
        best = None
        for row in self.store.lookup(scenario, params):
            trials, successes = row.get("trials"), row.get("successes")
            # bool is excluded explicitly: isinstance(True, int) holds,
            # so a foreign row with "successes": true would otherwise
            # pass this guard and poison the Wilson arithmetic below.
            if (
                isinstance(trials, bool)
                or isinstance(successes, bool)
                or not isinstance(trials, int)
                or not isinstance(successes, int)
            ):
                continue
            if precision_satisfied(successes, trials, ci_width, self.z):
                if best is None or trials > best["trials"]:
                    best = row
        if best is not None:
            return self._response(best, ci_width, source="store")
        exact = self.store.get(self._point(scenario, params, ci_width).key())
        if exact is not None:
            return self._response(exact, ci_width, source="store")
        return None

    def _point(
        self, scenario: str, params: Mapping[str, Any], ci_width: float
    ) -> CampaignPoint:
        return CampaignPoint(
            scenario=scenario,
            params=dict(params),
            trials=None,
            base_seed=self.base_seed,
            max_steps=None,
            budget=self._policy(ci_width),
        )

    def _compute(
        self, scenario: str, params: Mapping[str, Any], ci_width: float
    ) -> Dict[str, Any]:
        """Run the adaptive point on the shared pool and persist it."""
        point = self._point(scenario, params, ci_width)
        results = list(
            run_campaign(
                [point], pool=self._shared_pool(), chunker=self._chunker
            )
        )
        row = results[0].to_row()
        self.store.append_row(row)
        trials = row.get("trials")
        if isinstance(trials, int) and not isinstance(trials, bool):
            self._trials_total.inc(trials)
            self._meter.observe(trials)
        return row

    def _shared_pool(self) -> WorkerPool:
        with self._pool_lock:
            if self._pool is None:
                self._pool = WorkerPool(self.workers)
            return self._pool

    def _response(
        self, row: Mapping[str, Any], ci_width: float, source: str
    ) -> Dict[str, Any]:
        trials = row["trials"]
        successes = row["successes"]
        low, high = wilson_interval(successes, trials, self.z)
        return {
            "scenario": row["scenario"],
            "params": row["params"],
            "ci_width": ci_width,
            "trials": trials,
            "successes": successes,
            "estimate": successes / trials if trials else None,
            "low": low,
            "high": high,
            "width": high - low,
            "satisfied": precision_satisfied(
                successes, trials, ci_width, self.z
            ),
            "source": source,
        }

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.close()
                self._pool = None


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------


class EstimateHandler(JsonRequestHandler):
    """Routes requests to the class-attribute ``service`` (installed by
    :func:`make_server`, so each server instance binds its own).

    Response writing (and the disconnect guard + counter around it)
    lives on :class:`~repro.httpd.JsonRequestHandler`.
    """

    service: EstimateService = None  # type: ignore[assignment]

    def do_GET(self) -> None:  # noqa: N802 (http.server's casing)
        parsed = urlparse(self.path)
        if parsed.path == "/healthz":
            self._send(
                200, {"status": "ok", "read_only": self.service.read_only}
            )
        elif parsed.path == "/metrics":
            self._send_text(200, self.service.metrics.render())
        elif parsed.path == "/scenarios":
            self._send(200, {"scenarios": scenario_names()})
        elif parsed.path == "/estimate":
            # keep_blank_values: "?flag=" must reach coerce_param and be
            # rejected there, not silently vanish from the params dict.
            pairs = parse_qsl(parsed.query, keep_blank_values=True)
            keys = [key for key, _ in pairs]
            duplicates = sorted({key for key in keys if keys.count(key) > 1})
            if duplicates:
                # "?n=8&n=64" used to estimate n=64 (dict() last-wins);
                # an ambiguous query is the client's bug to hear about.
                self._send(
                    400,
                    {
                        "error": "duplicate query parameter(s): "
                        + ", ".join(duplicates)
                    },
                )
                return
            query = dict(pairs)
            scenario = query.pop("scenario", None)
            ci_width = query.pop("ci_width", None)
            params = {}
            for key, value in query.items():
                try:
                    params[key] = coerce_param(value)
                except ConfigurationError as exc:
                    self._send(400, {"error": f"{key}: {exc}"})
                    return
            self._estimate(scenario, params, ci_width)
        else:
            self._send(404, {"error": f"unknown path {parsed.path!r}"})

    def do_POST(self) -> None:  # noqa: N802
        if urlparse(self.path).path != "/estimate":
            self._send(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            body = json.loads(self.rfile.read(length) or b"{}")
        except ValueError:
            self._send(400, {"error": "body must be a JSON object"})
            return
        if not isinstance(body, dict):
            self._send(400, {"error": "body must be a JSON object"})
            return
        self._estimate(
            body.get("scenario"), body.get("params") or {}, body.get("ci_width")
        )

    def _estimate(self, scenario, params, ci_width) -> None:
        if not scenario:
            self._send(400, {"error": "missing 'scenario'"})
            return
        if ci_width is None:
            self._send(400, {"error": "missing 'ci_width'"})
            return
        try:
            ci_width = float(ci_width)
        except (TypeError, ValueError):
            self._send(400, {"error": f"bad ci_width {ci_width!r}"})
            return
        if not isinstance(params, dict):
            self._send(400, {"error": "'params' must be an object"})
            return
        try:
            payload = self.service.estimate(scenario, params, ci_width)
        except ConfigurationError as exc:
            self._send(400, {"error": str(exc)})
            return
        except ComputeRefused as exc:
            self._send(409, {"error": str(exc)})
            return
        self._send(200, payload)


def make_server(
    service: EstimateService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """A threading HTTP server bound to ``service`` (``port=0`` binds an
    ephemeral port — read it back from ``server.server_address``)."""
    handler = bind_handler(
        EstimateHandler,
        "BoundEstimateHandler",
        service=service,
        disconnects=service.disconnects,
    )
    return ThreadingHTTPServer((host, port), handler)


def run_server(
    db: str,
    host: str = "127.0.0.1",
    port: int = 8080,
    workers: int = 1,
    read_only: bool = False,
    min_trials: int = DEFAULT_MIN_TRIALS,
    max_trials: int = DEFAULT_MAX_TRIALS,
    base_seed: int = 0,
    verbose: bool = False,
) -> int:
    """``python -m repro serve``: serve estimates until interrupted."""
    store = ResultStore(db, read_only=read_only)
    service = EstimateService(
        store,
        workers=workers,
        read_only=read_only,
        min_trials=min_trials,
        max_trials=max_trials,
        base_seed=base_seed,
    )
    server = make_server(service, host, port)
    if verbose:
        server.RequestHandlerClass.verbose = True
    bound_host, bound_port = server.server_address[:2]
    mode = " (read-only)" if service.read_only else ""
    print(
        f"serving estimates on http://{bound_host}:{bound_port} "
        f"from {db}{mode}",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
        store.close()
    return 0
