"""The synchronous baseline FLE protocols (Abraham et al. scenarios).

**Fully connected network** (:func:`sync_broadcast_protocol`): round 1,
every processor broadcasts its secret simultaneously; round 2, every
processor echoes the full vector it received; round 3, everyone checks
all echoes agree and elects ``sum mod n``. Simultaneity means even an
(n-1)-coalition must commit its secrets before seeing any honest secret,
and the echo round catches equivocation (sending different values to
different processors), so any manipulation is either ineffective or
punished by FAIL.

**Synchronous ring** (:func:`sync_ring_protocol`): the same sum scheme,
but values propagate hop by hop: in round ``r`` each processor forwards
the value it received in round ``r-1``, so after ``n-1`` rounds everyone
holds all ``n`` secrets. Each processor's own secret is committed in
round 1 before any information reaches it, which is where the resilience
comes from; a cheater's only lever is inconsistency, which the final
validation (own secret returns intact) converts to FAIL.
"""

from typing import Any, Dict, Hashable, List, Tuple

from repro.protocols.outcome import residue_to_id
from repro.sync.engine import SyncContext, SyncStrategy
from repro.sim.topology import Topology
from repro.util.errors import ConfigurationError
from repro.util.modmath import canonical_mod, mod_sum


class SyncBroadcastLeadStrategy(SyncStrategy):
    """Honest processor of the fully-connected synchronous baseline."""

    def __init__(self, pid: int, n: int):
        self.pid = pid
        self.n = n
        self.secret: int = None
        self.values: Dict[int, int] = {}

    def on_round(
        self,
        ctx: SyncContext,
        round_number: int,
        inbox: List[Tuple[Hashable, Any]],
    ) -> None:
        if round_number == 1:
            self.secret = ctx.rng.randrange(self.n)
            self.values[self.pid] = self.secret
            ctx.broadcast(("value", self.secret))
            return
        if round_number == 2:
            for sender, message in inbox:
                tag, payload = message
                if tag != "value":
                    ctx.abort("unexpected message in round 1")
                    return
                self.values[sender] = canonical_mod(int(payload), self.n)
            if len(self.values) != self.n:
                ctx.abort("missing secrets after broadcast round")
                return
            vector = tuple(sorted(self.values.items()))
            ctx.broadcast(("echo", vector))
            return
        # Round 3: all echoes must match our own view exactly.
        my_vector = tuple(sorted(self.values.items()))
        echoes = {message[1] for _, message in inbox if message[0] == "echo"}
        if len(inbox) != self.n - 1 or echoes != {my_vector}:
            ctx.abort("echo mismatch: some processor equivocated")
            return
        total = mod_sum(self.values.values(), self.n)
        ctx.terminate(residue_to_id(total, self.n))


class SyncRingLeadStrategy(SyncStrategy):
    """Honest processor of the synchronous-ring baseline.

    Round 1 commits the secret; rounds 2..n forward the previous round's
    value one hop, so each value makes a full circle in ``n`` rounds and
    every processor receives all ``n`` secrets (its own last, in round
    ``n+1``, where it is validated).
    """

    def __init__(self, pid: int, n: int):
        self.pid = pid
        self.n = n
        self.secret: int = None
        self.received: List[int] = []

    def on_round(
        self,
        ctx: SyncContext,
        round_number: int,
        inbox: List[Tuple[Hashable, Any]],
    ) -> None:
        if round_number == 1:
            self.secret = ctx.rng.randrange(self.n)
            ctx.broadcast(self.secret)  # single out-neighbour on the ring
            return
        if len(inbox) != 1:
            ctx.abort(f"expected one ring message, got {len(inbox)}")
            return
        value = canonical_mod(int(inbox[0][1]), self.n)
        self.received.append(value)
        if round_number <= self.n:
            ctx.broadcast(value)
            return
        # Round n+1: our own secret has come full circle.
        if value != self.secret:
            ctx.abort("own secret did not return intact")
            return
        ctx.terminate(residue_to_id(mod_sum(self.received, self.n), self.n))


def sync_broadcast_protocol(topology: Topology) -> Dict[Hashable, SyncStrategy]:
    """Honest strategy vector for the fully-connected baseline."""
    n = len(topology)
    for pid in topology.nodes:
        if len(set(topology.successors(pid))) != n - 1:
            raise ConfigurationError(
                "sync broadcast baseline needs a complete topology"
            )
    return {pid: SyncBroadcastLeadStrategy(pid, n) for pid in topology.nodes}


def sync_ring_protocol(topology: Topology) -> Dict[Hashable, SyncStrategy]:
    """Honest strategy vector for the synchronous-ring baseline."""
    n = len(topology)
    for pid in topology.nodes:
        if len(topology.successors(pid)) != 1:
            raise ConfigurationError("sync ring baseline needs a directed ring")
    return {pid: SyncRingLeadStrategy(pid, n) for pid in topology.nodes}
