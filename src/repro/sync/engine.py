"""Lockstep synchronous executor.

Execution proceeds in global rounds. In round ``r`` every live processor
sees the full batch of messages addressed to it in round ``r-1`` and
decides its round-``r`` sends *before* any of them is delivered — the
simultaneity that makes rushing structurally impossible and gives the
synchronous baselines their (n-1) resilience.

The outcome convention matches the asynchronous executor: a valid id iff
all processors terminate with the same non-⊥ output, ``FAIL`` otherwise.
"""

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Mapping, Optional, Tuple

from repro.sim.execution import ABORT, FAIL
from repro.sim.topology import Topology
from repro.util.errors import ConfigurationError, ProtocolViolation
from repro.util.rng import RngRegistry


class SyncContext:
    """Per-round action collector for one processor."""

    def __init__(self, pid: Hashable, out_neighbors: List[Hashable], n: int, rng):
        self.pid = pid
        self.out_neighbors = out_neighbors
        self.n = n
        self.rng = rng
        self.sends: List[Tuple[Hashable, Any]] = []
        self.terminated = False
        self.output: Any = None

    def send(self, to: Hashable, value: Any) -> None:
        """Queue ``value`` for delivery to ``to`` at the next round."""
        if self.terminated:
            raise ProtocolViolation(f"{self.pid} sent after terminating")
        if to not in self.out_neighbors:
            raise ProtocolViolation(f"{self.pid} -> {to} is not a link")
        self.sends.append((to, value))

    def broadcast(self, value: Any) -> None:
        """Send ``value`` to every out-neighbour."""
        for to in self.out_neighbors:
            self.send(to, value)

    def terminate(self, output: Any) -> None:
        if self.terminated:
            raise ProtocolViolation(f"{self.pid} terminated twice")
        self.terminated = True
        self.output = output

    def abort(self, reason: str = "") -> None:
        self.terminate(ABORT)


class SyncStrategy(ABC):
    """Behaviour of one processor under the synchronous model."""

    @abstractmethod
    def on_round(
        self,
        ctx: SyncContext,
        round_number: int,
        inbox: List[Tuple[Hashable, Any]],
    ) -> None:
        """Called once per round with last round's incoming messages."""


@dataclass
class SyncResult:
    """Outcome of a synchronous execution."""

    outcome: Any
    outputs: Dict[Hashable, Any]
    rounds: int
    fail_reason: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.outcome == FAIL


class SyncExecutor:
    """Runs a synchronous protocol to unanimous termination."""

    def __init__(
        self,
        topology: Topology,
        protocol: Mapping[Hashable, SyncStrategy],
        rng: Optional[RngRegistry] = None,
        max_rounds: int = 1000,
    ):
        missing = [v for v in topology.nodes if v not in protocol]
        if missing:
            raise ConfigurationError(f"no strategy for nodes: {missing}")
        self.topology = topology
        self.protocol = dict(protocol)
        self.rng = rng if rng is not None else RngRegistry(0)
        self.max_rounds = max_rounds

    def run(self) -> SyncResult:
        inboxes: Dict[Hashable, List[Tuple[Hashable, Any]]] = {
            v: [] for v in self.topology.nodes
        }
        outputs: Dict[Hashable, Any] = {}
        n = len(self.topology)
        for round_number in range(1, self.max_rounds + 1):
            next_inboxes: Dict[Hashable, List[Tuple[Hashable, Any]]] = {
                v: [] for v in self.topology.nodes
            }
            progressed = False
            for pid in self.topology.nodes:
                if pid in outputs:
                    continue
                ctx = SyncContext(
                    pid,
                    self.topology.successors(pid),
                    n,
                    self.rng.stream(f"proc:{pid}"),
                )
                self.protocol[pid].on_round(ctx, round_number, inboxes[pid])
                for to, value in ctx.sends:
                    next_inboxes[to].append((pid, value))
                    progressed = True
                if ctx.terminated:
                    outputs[pid] = ctx.output
                    progressed = True
            inboxes = next_inboxes
            if len(outputs) == n:
                return self._score(outputs, round_number)
            if not progressed:
                live = [v for v in self.topology.nodes if v not in outputs]
                return SyncResult(
                    FAIL, outputs, round_number,
                    f"quiesced with live processors: {live}",
                )
        return SyncResult(FAIL, outputs, self.max_rounds, "round budget exhausted")

    def _score(self, outputs: Dict[Hashable, Any], rounds: int) -> SyncResult:
        if any(o == ABORT for o in outputs.values()):
            aborted = [v for v, o in outputs.items() if o == ABORT]
            return SyncResult(FAIL, outputs, rounds, f"aborted: {aborted}")
        distinct = set(outputs.values())
        if len(distinct) == 1:
            return SyncResult(next(iter(distinct)), outputs, rounds)
        return SyncResult(
            FAIL, outputs, rounds, f"outputs disagree: {sorted(distinct, key=repr)}"
        )


def run_sync_protocol(
    topology: Topology,
    protocol: Mapping[Hashable, SyncStrategy],
    rng: Optional[RngRegistry] = None,
    seed: Optional[int] = None,
    max_rounds: int = 1000,
) -> SyncResult:
    """One-shot convenience wrapper around :class:`SyncExecutor`."""
    if rng is not None and seed is not None:
        raise ConfigurationError("pass either rng or seed, not both")
    if rng is None:
        rng = RngRegistry(seed if seed is not None else 0)
    return SyncExecutor(topology, protocol, rng=rng, max_rounds=max_rounds).run()
