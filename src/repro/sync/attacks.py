"""Demonstrations that the synchronous baselines deny rushing.

The asynchronous attacks all rest on one move: wait, learn, then commit.
Under lockstep rounds that move does not exist — a processor that stays
silent in the broadcast round is caught in the echo round, and one that
lies to some peers equivocates, which the echo round also catches. The
``SyncLastRoundCheater`` tries the strongest analogue of the Basic-LEAD
cheat (delay the secret until after seeing the others) and is always
punished with a ``FAIL`` outcome.
"""

from typing import Any, Dict, Hashable, List, Tuple

from repro.protocols.outcome import id_to_residue
from repro.sim.topology import Topology
from repro.sync.engine import SyncContext, SyncStrategy
from repro.sync.protocols import SyncBroadcastLeadStrategy
from repro.util.errors import ConfigurationError
from repro.util.modmath import canonical_mod


class SyncLastRoundCheater(SyncStrategy):
    """Withholds its secret in round 1, then tries to steer the sum.

    In the asynchronous model this exact behaviour controls Basic-LEAD
    (Claim B.1). Synchronously it is hopeless: honest processors notice
    the missing round-1 value (they count ``n`` secrets before echoing)
    and abort, so the cheater only ever achieves ``FAIL`` — the worst
    outcome under solution preference. Kept as an executable witness of
    *why* the paper's hard case is the asynchronous one.
    """

    def __init__(self, pid: int, n: int, target: int):
        self.pid = pid
        self.n = n
        self.target = target
        self.seen: Dict[int, int] = {}

    def on_round(
        self,
        ctx: SyncContext,
        round_number: int,
        inbox: List[Tuple[Hashable, Any]],
    ) -> None:
        if round_number == 1:
            return  # deviate: stay silent, hope to learn first
        if round_number == 2:
            for sender, message in inbox:
                if message[0] == "value":
                    self.seen[sender] = canonical_mod(
                        int(message[1]), self.n
                    )
            others = sum(self.seen.values()) % self.n
            chosen = canonical_mod(
                id_to_residue(self.target, self.n) - others, self.n
            )
            # Too late: honest processors already counted secrets and will
            # abort, but play the steering value anyway.
            ctx.broadcast(("value", chosen))
            return
        ctx.terminate(self.target)


def sync_rushing_attempt_protocol(
    topology: Topology, cheater: Hashable, target: int
) -> Dict[Hashable, SyncStrategy]:
    """Honest broadcast baseline + one last-round cheater."""
    n = len(topology)
    if cheater not in set(topology.nodes):
        raise ConfigurationError(f"cheater {cheater} not in the network")
    protocol: Dict[Hashable, SyncStrategy] = {
        pid: SyncBroadcastLeadStrategy(pid, n)
        for pid in topology.nodes
        if pid != cheater
    }
    protocol[cheater] = SyncLastRoundCheater(cheater, n, target)
    return protocol
