"""Synchronous-round execution model and the baseline FLE protocols.

The paper's Related Work (Section 1.1) summarizes the Abraham et al. [4]
scenarios its asynchronous-ring results are contrasted against:

- a synchronous fully connected network has an (n-1)-resilient FLE
  (simultaneous broadcast makes rushing impossible; echo rounds catch
  equivocation);
- a synchronous ring likewise;
- an asynchronous fully connected network reaches the optimal
  (n/2 - 1) resilience via Shamir secret sharing.

This package supplies the synchronous substrate and the first two
baselines; the Shamir-based asynchronous baseline lives in
:mod:`repro.protocols.async_complete` on the regular asynchronous
executor.
"""

from repro.sync.engine import (
    SyncContext,
    SyncExecutor,
    SyncStrategy,
    run_sync_protocol,
)
from repro.sync.protocols import (
    SyncBroadcastLeadStrategy,
    SyncRingLeadStrategy,
    sync_broadcast_protocol,
    sync_ring_protocol,
)
from repro.sync.attacks import (
    SyncLastRoundCheater,
    sync_rushing_attempt_protocol,
)

__all__ = [
    "SyncContext",
    "SyncExecutor",
    "SyncStrategy",
    "run_sync_protocol",
    "SyncBroadcastLeadStrategy",
    "SyncRingLeadStrategy",
    "sync_broadcast_protocol",
    "sync_ring_protocol",
    "SyncLastRoundCheater",
    "sync_rushing_attempt_protocol",
]
