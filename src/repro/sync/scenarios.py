"""Scenario specs for the lockstep synchronous subsystem.

The sync engine runs global rounds, not the asynchronous executor, so
its scenarios plug into the experiment runner through the
``run_trial`` hook: each trial builds the topology and strategy vector,
runs :class:`~repro.sync.engine.SyncExecutor` on the trial's private
:class:`~repro.util.rng.RngRegistry`, and reports ``(outcome, rounds)``.
All functions are module-level so the specs resolve identically in any
worker process.

Registered here (imported for effect by
:mod:`repro.experiments.catalog`):

- ``sync/broadcast`` — the fully-connected 3-round baseline;
- ``sync/ring`` — the hop-by-hop synchronous ring baseline;
- ``sync/last-round-cheat`` — the strongest rushing analogue, which the
  lockstep model *always* punishes (success = the cheater was caught).
"""

from typing import Optional, Tuple

from repro.experiments.scenario import (
    Params,
    ScenarioSpec,
    punished,
    register_scenario,
)
from repro.sync.attacks import sync_rushing_attempt_protocol
from repro.sync.engine import run_sync_protocol
from repro.sync.protocols import sync_broadcast_protocol, sync_ring_protocol
from repro.sim.topology import complete_graph, unidirectional_ring

#: Round budget used when the runner does not override ``max_steps``.
DEFAULT_MAX_ROUNDS = 1000


def _max_rounds(max_steps: Optional[int]) -> int:
    """The runner's per-trial step budget, reinterpreted as rounds."""
    return max_steps if max_steps is not None else DEFAULT_MAX_ROUNDS


def run_sync_broadcast_trial(
    params: Params, registry, max_steps: Optional[int]
) -> Tuple[object, int]:
    topo = complete_graph(params["n"])
    result = run_sync_protocol(
        topo,
        sync_broadcast_protocol(topo),
        rng=registry,
        max_rounds=_max_rounds(max_steps),
    )
    return result.outcome, result.rounds


def run_sync_ring_trial(
    params: Params, registry, max_steps: Optional[int]
) -> Tuple[object, int]:
    topo = unidirectional_ring(params["n"])
    result = run_sync_protocol(
        topo,
        sync_ring_protocol(topo),
        rng=registry,
        max_rounds=_max_rounds(max_steps),
    )
    return result.outcome, result.rounds


def run_sync_last_round_cheat_trial(
    params: Params, registry, max_steps: Optional[int]
) -> Tuple[object, int]:
    topo = complete_graph(params["n"])
    protocol = sync_rushing_attempt_protocol(
        topo, cheater=params["cheater"], target=params["target"]
    )
    result = run_sync_protocol(
        topo, protocol, rng=registry, max_rounds=_max_rounds(max_steps)
    )
    return result.outcome, result.rounds


register_scenario(
    ScenarioSpec(
        name="sync/broadcast",
        description="fully-connected synchronous baseline (3 rounds)",
        run_trial=run_sync_broadcast_trial,
        defaults={"n": 8},
        tags=("sync", "honest"),
    )
)

register_scenario(
    ScenarioSpec(
        name="sync/ring",
        description="synchronous ring baseline (n+1 rounds, hop-by-hop)",
        run_trial=run_sync_ring_trial,
        defaults={"n": 8},
        tags=("sync", "honest"),
    )
)

register_scenario(
    ScenarioSpec(
        name="sync/last-round-cheat",
        description="withhold-then-steer cheater vs lockstep (always punished)",
        run_trial=run_sync_last_round_cheat_trial,
        defaults={"n": 8, "cheater": 2, "target": 1},
        success=punished,
        tags=("sync", "attack"),
    )
)
