"""``repro.lint`` — the project-invariant static analyzer.

Importing this package registers the three rule packs (R1 determinism,
R2 lock discipline, R3 row integrity) with the engine; ``lint_paths``
then runs all of them. See ``engine.py`` for the pragma grammar and
``INVARIANTS.md`` at the repo root for what each rule protects.
"""

from repro.lint.engine import (
    CATALOG,
    Finding,
    lint_paths,
    render_json,
    render_text,
)

# Imported for their register_check side effects.
from repro.lint import rules_determinism  # noqa: F401
from repro.lint import rules_locks  # noqa: F401
from repro.lint import rules_rows  # noqa: F401

__all__ = [
    "CATALOG",
    "Finding",
    "lint_paths",
    "render_json",
    "render_text",
]
