"""R2 — lock discipline for classes that opt in via ``_GUARDED_BY``.

A class declares which lock protects which attribute::

    class WorkerPool:
        _GUARDED_BY = {"_pool": "_pool_guard", "_dispatched": "_counters_lock"}

and the linter then flags every ``self.<attr>`` read/write/delete that
is not lexically inside a ``with self.<lock>:`` block (R201). The
declaration itself must be a literal ``{str: str}`` dict so the check
needs no evaluation — anything else is R202.

The analysis is lexical and intra-procedural, matching the codebase's
conventions rather than chasing aliasing:

* ``__init__``/``__del__`` are exempt (no concurrent access before
  construction completes or during teardown);
* methods named ``*_locked`` are exempt — the repo-wide convention for
  "caller holds the lock" helpers (see ``coordinator.py``);
* a ``with`` that acquires several context managers counts every one of
  its items as executed under the acquired locks (``with self._lock,
  self._conn:`` is the store's idiom);
* nested ``def``/``lambda`` bodies reset the held-lock set to empty:
  closures run later, when the enclosing ``with`` has long exited;
* ``_GUARDED_BY`` maps are inherited from base classes *named in the
  same module* (``Counter(Metric)`` inherits Metric's map).
"""

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import (
    Finding,
    ModuleContext,
    dotted_name,
    register_check,
)

EXEMPT_METHODS = ("__init__", "__del__")


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.<name>`` → ``name``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _extract_guarded(
    cls: ast.ClassDef, ctx: ModuleContext
) -> Tuple[Optional[Dict[str, str]], Optional[Finding]]:
    """The class's own ``_GUARDED_BY`` literal, or an R202 finding."""
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        for target in targets:
            if not (isinstance(target, ast.Name) and target.id == "_GUARDED_BY"):
                continue
            bad = Finding(
                "R202", ctx.path, stmt.lineno, stmt.col_offset,
                f"_GUARDED_BY on {cls.name} must be a literal "
                "{'attr': 'lock'} dict of strings so the linter can "
                "read it without evaluating the module",
            )
            if not isinstance(value, ast.Dict):
                return None, bad
            guarded: Dict[str, str] = {}
            for key, lock in zip(value.keys, value.values):
                if not (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(lock, ast.Constant)
                    and isinstance(lock.value, str)
                ):
                    return None, bad
                guarded[key.value] = lock.value
            return guarded, None
    return None, None


def _scan(
    node: ast.AST,
    held: Set[str],
    guarded: Dict[str, str],
    ctx: ModuleContext,
    out: List[Finding],
) -> None:
    """Walk one method body tracking which self.<lock>s are held."""
    if isinstance(node, (ast.With, ast.AsyncWith)):
        acquired = set(held)
        for item in node.items:
            lock = _self_attr(item.context_expr)
            if lock is not None:
                acquired.add(lock)
        # Every withitem is part of the same With: `with self._lock,
        # self._conn:` acquires the lock before touching the guarded
        # connection, so the items are scanned with the acquired set.
        for item in node.items:
            _scan(item.context_expr, acquired, guarded, ctx, out)
        for stmt in node.body:
            _scan(stmt, acquired, guarded, ctx, out)
        return
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        # Deferred execution: by the time a closure runs, the lock the
        # enclosing `with` held is gone. Defaults evaluate at def time.
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            _scan(default, held, guarded, ctx, out)
        body = [node.body] if isinstance(node, ast.Lambda) else node.body
        for stmt in body:
            _scan(stmt, set(), guarded, ctx, out)
        return
    if isinstance(node, ast.ClassDef):
        for stmt in node.body:
            _scan(stmt, set(), guarded, ctx, out)
        return
    attr = _self_attr(node)
    if attr is not None and attr in guarded:
        lock = guarded[attr]
        if lock not in held:
            out.append(
                Finding(
                    "R201", ctx.path, node.lineno, node.col_offset,
                    f"self.{attr} is declared guarded by self.{lock} "
                    f"(_GUARDED_BY) but is accessed without holding it; "
                    "wrap in `with self." + lock + ":` or move into a "
                    "*_locked helper",
                )
            )
        return
    for child in ast.iter_child_nodes(node):
        _scan(child, held, guarded, ctx, out)


@register_check
def check_lock_discipline(ctx: ModuleContext) -> Iterator[Finding]:
    classes: Dict[str, ast.ClassDef] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            classes.setdefault(node.name, node)

    own: Dict[str, Optional[Dict[str, str]]] = {}
    for name, cls in classes.items():
        guarded, malformed = _extract_guarded(cls, ctx)
        if malformed is not None:
            yield malformed
        own[name] = guarded

    def resolve(name: str, trail: Set[str]) -> Dict[str, str]:
        # Same-module base classes contribute their maps; derived
        # declarations win on conflict. Cycles terminate via `trail`.
        if name in trail or name not in classes:
            return {}
        trail = trail | {name}
        merged: Dict[str, str] = {}
        for base in classes[name].bases:
            parts = dotted_name(base)
            if parts is not None and parts[-1] in classes:
                merged.update(resolve(parts[-1], trail))
        merged.update(own.get(name) or {})
        return merged

    for name, cls in classes.items():
        guarded = resolve(name, set())
        if not guarded:
            continue
        out: List[Finding] = []
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name in EXEMPT_METHODS or stmt.name.endswith("_locked"):
                continue
            for default in list(stmt.args.defaults) + [
                d for d in stmt.args.kw_defaults if d is not None
            ]:
                _scan(default, set(), guarded, ctx, out)
            for inner in stmt.body:
                _scan(inner, set(), guarded, ctx, out)
        for finding in out:
            yield finding
