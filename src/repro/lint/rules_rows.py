"""R3 — row integrity: rows reach disk through RowWriter, seeded.

R301  flags the two ways a row can bypass the blessed sinks
      (``RowWriter``'s fsync'd atomic appends, ``StoreRowWriter``'s
      resume-key-unique SQLite transactions): a direct ``json.dump``
      call, and ``open(path, mode)`` with a writable (or non-constant)
      mode. The one legitimate ``open``-for-write in the tree is
      RowWriter's own file handle — pragma'd, with the reason.

R302  flags ``run_trial``/``run_batch`` implementations that accept
      their seed-carrying argument and never reference it. A trial
      function wired into a ``ScenarioSpec`` receives ``(params,
      registry, max_steps)`` and a batch kernel ``(seeds, params,
      max_steps)``; ignoring ``registry``/``seeds`` means every trial
      computes the same thing while the rows claim per-seed outcomes.
      Exact/deterministic evaluations (closed-form witnesses) are real
      — those carry ``allow[R302]`` pragmas stating so. Only functions
      actually referenced by a ``ScenarioSpec(...)`` call in the same
      module are checked, so helpers stay out of scope.
"""

import ast
import re
from typing import Dict, Iterator

from repro.lint.engine import (
    Finding,
    ModuleContext,
    dotted_name,
    register_check,
)

_WRITABLE_MODE = re.compile(r"[wax+]")

#: role -> (0-based index of the seed-carrying parameter, its name).
_SEED_PARAM = {"run_trial": (1, "registry"), "run_batch": (0, "seeds")}


@register_check
def check_row_integrity(ctx: ModuleContext) -> Iterator[Finding]:
    spec_roles: Dict[str, str] = {}
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        parts = dotted_name(node.func)
        if parts is None:
            continue
        if tuple(parts[-2:]) == ("json", "dump"):
            yield Finding(
                "R301", ctx.path, node.lineno, node.col_offset,
                "json.dump() writes rows without RowWriter/StoreRowWriter "
                "(no fsync'd atomic append, no resume key); route output "
                "through a row writer",
            )
        elif parts == ("open",):
            mode = node.args[1] if len(node.args) >= 2 else None
            for kw in node.keywords:
                if kw.arg == "mode":
                    mode = kw.value
            if mode is None:
                continue  # default "r"
            if (
                isinstance(mode, ast.Constant)
                and isinstance(mode.value, str)
                and not _WRITABLE_MODE.search(mode.value)
            ):
                continue
            yield Finding(
                "R301", ctx.path, node.lineno, node.col_offset,
                "open() with a write mode bypasses RowWriter/"
                "StoreRowWriter; rows written this way survive neither "
                "crashes nor resume",
            )
        elif parts[-1] == "ScenarioSpec":
            for kw in node.keywords:
                if kw.arg in _SEED_PARAM and isinstance(kw.value, ast.Name):
                    spec_roles[kw.value.id] = kw.arg

    if not spec_roles:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.FunctionDef) or node.name not in spec_roles:
            continue
        role = spec_roles[node.name]
        index, what = _SEED_PARAM[role]
        params = list(node.args.posonlyargs) + list(node.args.args)
        if len(params) <= index:
            continue
        seed_name = params[index].arg
        used = any(
            isinstance(sub, ast.Name) and sub.id == seed_name
            for stmt in node.body
            for sub in ast.walk(stmt)
        )
        if not used:
            yield Finding(
                "R302", ctx.path, node.lineno, node.col_offset,
                f"{role} implementation {node.name}() never uses its "
                f"{what} argument {seed_name!r}: outcomes must derive "
                "from the per-trial seed (pragma allow[R302] for exact "
                "closed-form evaluations)",
            )
