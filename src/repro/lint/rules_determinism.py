"""R1 — determinism: rows derive from seeds, nothing else.

Every row the campaign machinery emits must be a pure function of
``(base_seed, trial_index)`` (ROADMAP: byte-identical across workers,
chunk sizes, batch kernels, and hosts). Four things break that purity
and each gets a rule:

R101  wall-clock reads (``time.time``, ``datetime.now``, …)
R102  the process-global Mersenne Twister (``random.random()``) or an
      un-seeded numpy generator — both shared across trials
R103  OS entropy (``os.urandom``, ``secrets``) that no seed reproduces
R104  iterating a ``set`` in an order-sensitive position: CPython's set
      order depends on insertion history and (for str keys) hashing, so
      folding set iteration into an outcome makes rows machine-dependent

Scheduling metadata (timestamps on store markers, the ``.timings``
sidecar) is legitimately wall-clock — those audited sites carry
``# repro-lint: allow[R101] reason`` pragmas. Order-insensitive
reductions over sets (``sorted(set(...))``, ``max(... for x in
set(...))``) are structurally exempt from R104: only ``for`` statements
and list comprehensions preserve iteration order into the result.
"""

import ast
from typing import Iterator

from repro.lint.engine import (
    Finding,
    ModuleContext,
    dotted_name,
    register_check,
)

#: Matched against the last two parts of the dotted call name, so both
#: ``time.time()`` and ``datetime.datetime.now()`` are caught.
WALL_CLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

#: numpy.random constructors that are fine *when given a seed* — only
#: a no-argument call (seeded from OS entropy) is flagged.
NUMPY_SEEDABLE = {"RandomState", "default_rng", "Generator", "SeedSequence"}


def _set_like(node: ast.AST) -> bool:
    """Does this expression evaluate to a set (unordered iteration)?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        parts = dotted_name(node.func)
        return parts is not None and parts[-1] in ("set", "frozenset")
    return False


@register_check
def check_determinism(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            parts = dotted_name(node.func)
            if parts is None:
                continue
            dotted = ".".join(parts)
            last_two = tuple(parts[-2:])
            if last_two in WALL_CLOCK:
                yield Finding(
                    "R101", ctx.path, node.lineno, node.col_offset,
                    f"wall-clock call {dotted}() in row-producing code: "
                    "outcomes must derive from the trial seed, not the "
                    "clock (pragma allow[R101] for scheduling metadata)",
                )
            elif len(parts) == 2 and parts[0] == "random" and parts[1] != "Random":
                yield Finding(
                    "R102", ctx.path, node.lineno, node.col_offset,
                    f"module-level random.{parts[1]}() uses the "
                    "process-global generator shared across trials; "
                    "construct random.Random(derive_seed(...)) instead",
                )
            elif len(parts) >= 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
                fn = parts[2]
                if fn in NUMPY_SEEDABLE:
                    if not node.args and not node.keywords:
                        yield Finding(
                            "R102", ctx.path, node.lineno, node.col_offset,
                            f"un-seeded {dotted}() draws its state from OS "
                            "entropy; pass an explicit seed",
                        )
                else:
                    yield Finding(
                        "R102", ctx.path, node.lineno, node.col_offset,
                        f"{dotted}() draws from numpy's global generator "
                        "shared across trials; use a seeded RandomState/"
                        "default_rng instance",
                    )
            elif last_two == ("os", "urandom") or parts[0] == "secrets":
                yield Finding(
                    "R103", ctx.path, node.lineno, node.col_offset,
                    f"{dotted}() is OS entropy no seed can reproduce; "
                    "derive randomness from the trial seed",
                )
        elif isinstance(node, ast.For) and _set_like(node.iter):
            yield Finding(
                "R104", ctx.path, node.iter.lineno, node.iter.col_offset,
                "for-loop over a set: iteration order is "
                "insertion/hash-dependent, so any order-sensitive fold "
                "diverges across machines; iterate sorted(...) instead",
            )
        elif isinstance(node, ast.ListComp):
            for gen in node.generators:
                if _set_like(gen.iter):
                    yield Finding(
                        "R104", ctx.path, gen.iter.lineno, gen.iter.col_offset,
                        "list built by iterating a set inherits its "
                        "nondeterministic order; wrap the source in "
                        "sorted(...)",
                    )
