"""The lint engine: findings, pragmas, the rule catalog, and the runner.

``python -m repro lint`` is a *project-invariant* checker, not a style
linter: every rule encodes a contract the reproduction's results stand
on (see the rule packs in :mod:`repro.lint.rules_determinism`,
:mod:`repro.lint.rules_locks`, :mod:`repro.lint.rules_rows`, and the
repository's ``INVARIANTS.md``). The engine is deliberately small and
stdlib-only — ``ast`` for structure, ``tokenize`` for comments — so the
check runs identically on every interpreter the test matrix covers.

Suppression is explicit and audited. A finding on line ``L`` is
silenced only by a pragma comment **on line L or the line above**::

    row["created"] = time.time()  # repro-lint: allow[R101] audit stamp only

and the pragma grammar is strict: the rule id must exist, and a
non-empty reason is required — a pragma without a justification is
itself a finding (R002), so the audit trail can never silently decay.
``allow-file[RULE]`` anywhere in a file exempts the whole file (for
generated or fixture code).

The public entry point is :func:`lint_paths`; findings come back sorted
by (file, line, column, rule) so text and JSON output are stable enough
to pin in CI.
"""

import ast
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.util.errors import ConfigurationError

#: Every rule id the engine knows, with the one-line summary the README
#: catalog and ``--select``/``--ignore`` validation share. Rule packs
#: may only emit ids listed here — an unknown id in a finding or a
#: pragma is a bug (respectively a typo) and is rejected loudly.
CATALOG: Dict[str, str] = {
    "R001": "file cannot be parsed (syntax error or unreadable)",
    "R002": "malformed repro-lint pragma (unknown rule, or missing reason)",
    "R101": "wall-clock call (time.time / datetime.now) in row-producing code",
    "R102": "module-level random.* or un-seeded numpy.random use",
    "R103": "os.urandom / secrets: randomness no seed can reproduce",
    "R104": "iteration over a set feeding an order-sensitive construct",
    "R201": "guarded attribute accessed outside its declared lock",
    "R202": "malformed _GUARDED_BY declaration",
    "R301": "row-shaped write (json.dump / open-for-write) bypassing RowWriter",
    "R302": "run_trial/run_batch implementation ignores its seed argument",
}

#: The registered checkers, each ``fn(ctx) -> Iterable[Finding]``. A
#: checker may emit findings for several related rule ids (one pack's
#: rules usually share a traversal).
CHECKS: List[Callable[["ModuleContext"], Iterable["Finding"]]] = []


def register_check(fn):
    """Register a rule-pack checker (decorator, import-time effect)."""
    CHECKS.append(fn)
    return fn


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "file": self.path.replace(os.sep, "/"),
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


#: ``# repro-lint: allow[R101] reason`` / ``allow-file[R301] reason``.
PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>allow(?:-file)?)"
    r"(?:\[(?P<rules>[^\]]*)\])?\s*(?P<reason>.*)$"
)


@dataclass
class Pragmas:
    """The suppression state of one file, parsed from its comments."""

    line_rules: Dict[int, Set[str]] = field(default_factory=dict)
    file_rules: Set[str] = field(default_factory=set)
    malformed: List[Finding] = field(default_factory=list)

    def suppresses(self, finding: Finding) -> bool:
        if finding.rule in self.file_rules:
            return True
        for line in (finding.line, finding.line - 1):
            if finding.rule in self.line_rules.get(line, ()):
                return True
        return False


def scan_pragmas(source: str, path: str) -> Pragmas:
    """Collect every pragma comment (and every malformed one) in a file.

    Comments are found with :mod:`tokenize` — not a per-line regex — so
    a pragma-shaped string *literal* can never suppress anything.
    """
    pragmas = Pragmas()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The caller only scans files ast.parse accepted; a tokenizer
        # disagreement just means no pragmas are honoured.
        return pragmas
    for tok in tokens:
        if tok.type != tokenize.COMMENT or "repro-lint" not in tok.string:
            continue
        lineno = tok.start[0]
        match = PRAGMA_RE.search(tok.string)
        if match is None:
            pragmas.malformed.append(
                Finding(
                    "R002", path, lineno, 0,
                    "unparseable repro-lint comment: expected "
                    "'# repro-lint: allow[RULE] reason'",
                )
            )
            continue
        raw = match.group("rules")
        ids = [r.strip() for r in (raw or "").split(",") if r.strip()]
        if not ids:
            pragmas.malformed.append(
                Finding(
                    "R002", path, lineno, 0,
                    "pragma names no rules: use allow[RULE] (or "
                    "allow[RULE1,RULE2]) with an explicit rule id",
                )
            )
            continue
        unknown = sorted(r for r in ids if r not in CATALOG)
        if unknown:
            pragmas.malformed.append(
                Finding(
                    "R002", path, lineno, 0,
                    f"pragma names unknown rule(s) {', '.join(unknown)}; "
                    f"known rules: {', '.join(sorted(CATALOG))}",
                )
            )
            continue
        if not match.group("reason").strip():
            pragmas.malformed.append(
                Finding(
                    "R002", path, lineno, 0,
                    "pragma has no reason: every allow[] must say why "
                    "the finding is intentional",
                )
            )
            continue
        if match.group("kind") == "allow-file":
            pragmas.file_rules.update(ids)
        else:
            pragmas.line_rules.setdefault(lineno, set()).update(ids)
    return pragmas


@dataclass
class ModuleContext:
    """Everything a rule pack may look at for one file."""

    path: str
    source: str
    tree: ast.Module
    pragmas: Pragmas


def dotted_name(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``, or None for non-name chains
    (calls, subscripts, literals as the base)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Every ``.py`` file under ``paths``, sorted, hidden/`__pycache__`
    directories skipped. Missing paths are configuration errors."""
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d
                    for d in dirs
                    if not d.startswith(".") and d != "__pycache__"
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)
        elif os.path.exists(path):
            yield path
        else:
            raise ConfigurationError(f"lint path {path!r} does not exist")


def lint_file(path: str) -> List[Finding]:
    """Every finding in one file (pragma suppression already applied)."""
    try:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        return [Finding("R001", path, 1, 0, f"cannot read file: {exc}")]
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                "R001", path, exc.lineno or 1, max((exc.offset or 1) - 1, 0),
                f"syntax error: {exc.msg}",
            )
        ]
    pragmas = scan_pragmas(source, path)
    ctx = ModuleContext(path=path, source=source, tree=tree, pragmas=pragmas)
    findings = list(pragmas.malformed)
    for check in CHECKS:
        for finding in check(ctx):
            if finding.rule not in CATALOG:  # a rule-pack bug, not user error
                raise AssertionError(
                    f"checker emitted unknown rule id {finding.rule!r}"
                )
            if not pragmas.suppresses(finding):
                findings.append(finding)
    return findings


def _parse_rule_list(text: Optional[str]) -> List[str]:
    if not text:
        return []
    prefixes = [part.strip() for part in text.split(",") if part.strip()]
    for prefix in prefixes:
        if not any(rule_id.startswith(prefix) for rule_id in CATALOG):
            raise ConfigurationError(
                f"unknown rule selector {prefix!r}; known rules: "
                + ", ".join(sorted(CATALOG))
            )
    return prefixes


def _matches(rule_id: str, prefixes: List[str]) -> bool:
    return any(rule_id.startswith(prefix) for prefix in prefixes)


def lint_paths(
    paths: Sequence[str],
    select: Optional[str] = None,
    ignore: Optional[str] = None,
) -> List[Finding]:
    """Lint files/directories; returns sorted findings.

    ``select``/``ignore`` take comma-separated rule ids or prefixes
    (``R2`` selects every R2xx rule); ``select`` narrows to matching
    rules, then ``ignore`` drops matches. Unknown selectors raise
    :class:`~repro.util.errors.ConfigurationError`.
    """
    selected = _parse_rule_list(select)
    ignored = _parse_rule_list(ignore)
    findings: List[Finding] = []
    seen: Set[str] = set()
    for path in iter_python_files(paths):
        norm = os.path.normpath(path)
        if norm in seen:
            continue
        seen.add(norm)
        for finding in lint_file(path):
            if selected and not _matches(finding.rule, selected):
                continue
            if ignored and _matches(finding.rule, ignored):
                continue
            findings.append(finding)
    return sorted(findings, key=Finding.sort_key)


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: RULE message`` line per finding."""
    return "".join(finding.render() + "\n" for finding in findings)


def render_json(findings: Sequence[Finding]) -> str:
    """The stable JSON document CI pins: ``{"findings": [...]}``."""
    return (
        json.dumps(
            {"findings": [finding.to_dict() for finding in findings]},
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
