"""Shamir secret sharing over a prime field.

The substrate behind the paper's asynchronous *complete-network* baseline
(Section 1.1, citing Abraham et al. [4]): each processor shares its secret
with threshold ⌈n/2⌉ so that coalitions below half the ring learn nothing
before committing. Implemented from scratch — polynomial sharing and
Lagrange reconstruction over GF(p).
"""

from repro.secretshare.field import PrimeField, next_prime
from repro.secretshare.shamir import ShamirScheme, Share

__all__ = ["PrimeField", "next_prime", "ShamirScheme", "Share"]
