"""Prime-field arithmetic for Shamir sharing.

A tiny GF(p) implementation: we only need add/mul/inverse and a way to
find a prime comfortably larger than both the ring size and the secret
domain. Deterministic Miller-Rabin is exact for 64-bit inputs with the
standard witness set, which is far beyond any simulation here.
"""

from typing import List

_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def _is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin (exact below 3.3·10^24)."""
    if n < 2:
        return False
    for p in _MR_WITNESSES:
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than ``n``."""
    candidate = max(2, n + 1)
    while not _is_prime(candidate):
        candidate += 1
    return candidate


class PrimeField:
    """GF(p) with the handful of operations Shamir needs."""

    def __init__(self, p: int):
        if not _is_prime(p):
            raise ValueError(f"{p} is not prime")
        self.p = p

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.p

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.p

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises on 0."""
        a %= self.p
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(p)")
        return pow(a, self.p - 2, self.p)

    def eval_poly(self, coeffs: List[int], x: int) -> int:
        """Evaluate ``Σ coeffs[i]·x^i`` by Horner's rule."""
        acc = 0
        for c in reversed(coeffs):
            acc = (acc * x + c) % self.p
        return acc

    def lagrange_at_zero(self, points: List[tuple]) -> int:
        """Interpolate the unique degree-(len-1) polynomial at x = 0.

        ``points`` are distinct ``(x, y)`` pairs with x ≠ 0.
        """
        xs = [x for x, _ in points]
        if len(set(xs)) != len(xs):
            raise ValueError("interpolation points must have distinct x")
        total = 0
        for i, (xi, yi) in enumerate(points):
            num = den = 1
            for j, (xj, _) in enumerate(points):
                if i == j:
                    continue
                num = self.mul(num, xj)
                den = self.mul(den, self.sub(xj, xi))
            total = self.add(total, self.mul(yi, self.mul(num, self.inv(den))))
        return total
