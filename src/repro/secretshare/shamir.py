"""Shamir's (t+1)-out-of-n threshold secret sharing.

A secret ``s`` is embedded as the constant term of a uniformly random
degree-``t`` polynomial over GF(p); share ``i`` is the evaluation at
``x = i``. Any ``t+1`` shares reconstruct ``s`` by Lagrange interpolation
at zero; any ``t`` shares are information-theoretically independent of
``s`` — the property the asynchronous complete-network protocol leans on
(coalitions of size ≤ t learn nothing before committing).
"""

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.secretshare.field import PrimeField, next_prime
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class Share:
    """One share: the evaluation point ``x`` and value ``y``."""

    x: int
    y: int


class ShamirScheme:
    """Threshold sharing for ``n`` parties with reconstruction threshold
    ``threshold`` (= t+1 shares needed; degree t = threshold - 1).

    Parameters
    ----------
    n:
        Number of parties; shares are issued at ``x = 1..n``.
    threshold:
        Minimum number of shares that determines the secret.
    modulus:
        Secret domain; secrets live in ``{0..modulus-1}``. The field
        prime is chosen > max(n, modulus) so points and secrets embed.
    """

    def __init__(self, n: int, threshold: int, modulus: int):
        if not 1 <= threshold <= n:
            raise ConfigurationError(
                f"threshold {threshold} out of range 1..{n}"
            )
        if modulus < 2:
            raise ConfigurationError("modulus must be at least 2")
        self.n = n
        self.threshold = threshold
        self.modulus = modulus
        self.field = PrimeField(next_prime(max(n, modulus)))

    def share(self, secret: int, rng: random.Random) -> List[Share]:
        """Split ``secret`` into ``n`` shares (share ``i`` at x = i)."""
        if not 0 <= secret < self.modulus:
            raise ConfigurationError(
                f"secret {secret} outside domain [0, {self.modulus})"
            )
        coeffs = [secret] + [
            rng.randrange(self.field.p) for _ in range(self.threshold - 1)
        ]
        return [
            Share(x, self.field.eval_poly(coeffs, x))
            for x in range(1, self.n + 1)
        ]

    def reconstruct(self, shares: Iterable[Share]) -> int:
        """Recover the secret from ≥ threshold distinct shares.

        The interpolated constant term is reduced modulo the secret
        domain; with honestly generated shares it already lies inside it,
        so the reduction only normalizes corrupted inputs.
        """
        pool = list(shares)
        if len({s.x for s in pool}) < self.threshold:
            raise ConfigurationError(
                f"need {self.threshold} distinct shares, got "
                f"{len({s.x for s in pool})}"
            )
        chosen = sorted(pool, key=lambda s: s.x)[: self.threshold]
        value = self.field.lagrange_at_zero([(s.x, s.y) for s in chosen])
        return value % self.modulus

    def consistent(self, shares: Iterable[Share]) -> bool:
        """True iff *all* given shares lie on one degree-(threshold-1)
        polynomial — the validation honest processors run on revealed
        shares before trusting a reconstruction."""
        pool = sorted(shares, key=lambda s: s.x)
        if len(pool) <= self.threshold:
            return True
        base = pool[: self.threshold]
        for probe in pool[self.threshold :]:
            predicted = self._eval_from(base, probe.x)
            if predicted != probe.y:
                return False
        return True

    def _eval_from(self, base: List[Share], x: int) -> int:
        """Evaluate the polynomial through ``base`` at ``x`` (Lagrange)."""
        f = self.field
        total = 0
        for i, si in enumerate(base):
            num = den = 1
            for j, sj in enumerate(base):
                if i == j:
                    continue
                num = f.mul(num, f.sub(x, sj.x))
                den = f.mul(den, f.sub(si.x, sj.x))
            total = f.add(total, f.mul(si.y, f.mul(num, f.inv(den))))
        return total
