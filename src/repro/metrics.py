"""Prometheus text-format metrics: counters, gauges, and a registry.

The served surfaces — the :mod:`repro.serve` estimate service and the
campaign coordinator in :mod:`repro.experiments.coordinator` — expose a
``GET /metrics`` endpoint in the Prometheus text exposition format
(version 0.0.4), so a stock Prometheus scrape (or a plain ``curl``)
observes trials/sec, lease and queue depth, per-node cost, worker
health, store hit/miss rates, and client disconnects without the
service growing a dependency: everything here is stdlib.

Three pieces:

- :class:`Counter` / :class:`Gauge`: thread-safe metric families with
  optional labels (``counter.inc(3, node="n1")`` →
  ``name{node="n1"} 3``). Counters only go up; gauges are set.
- :class:`MetricsRegistry`: owns the families, renders the text format
  (``render()``), and runs registered *collector* callbacks first — the
  hook that refreshes gauges from live state (queue depths, lock-table
  sizes, pool counters) exactly at scrape time instead of on every
  mutation.
- :class:`ThroughputMeter`: a sliding-window events/sec estimator
  feeding the ``*_per_second`` gauges — a counter alone would leave
  rate computation to the scraper, and the acceptance question
  ("how fast is it *now*?") deserves a direct answer.

:func:`parse_text` is the format's own checker — tests and the CI smoke
parse the endpoint's output back through it, so "valid Prometheus text"
is a pinned property, not a hope.
"""

import math
import re
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.util.errors import ConfigurationError

#: The Content-Type a /metrics response must carry (text format 0.0.4).
TEXT_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: One rendered sample line: ``name{label="value",...} number``.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_PAIR_RE = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$'
)

#: Canonical label-set key: sorted (name, value) pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """A sample value in the exposition format's number grammar:
    integral values print without a trailing ``.0`` (so ``grep -q
    'name 5'`` in a smoke script means what it looks like)."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value):
        return str(int(value))
    return repr(value)


class Metric:
    """One metric family: a name, a help line, and labeled samples.

    Thread-safe: every sample mutation and read holds the family lock.
    Concrete kinds (:class:`Counter`, :class:`Gauge`) differ only in
    the mutators they expose and the ``# TYPE`` line they render.
    """

    kind = "untyped"

    #: Lock discipline, checked by ``python -m repro lint`` (R201);
    #: Counter/Gauge inherit both the samples dict and its lock.
    _GUARDED_BY = {"_samples": "_lock"}

    def __init__(self, name: str, help_text: str = ""):
        if not _NAME_RE.match(name or ""):
            raise ConfigurationError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help_text
        self._samples: Dict[LabelKey, float] = {}
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, object]) -> LabelKey:
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ConfigurationError(
                    f"invalid label name {label!r} on metric {self.name!r}"
                )
        return tuple(sorted((k, str(v)) for k, v in labels.items()))

    def value(self, **labels) -> float:
        """The sample's current value (0.0 when never touched)."""
        key = self._key(labels)
        with self._lock:
            return self._samples.get(key, 0.0)

    def samples(self) -> Dict[LabelKey, float]:
        """A snapshot of every (label set, value) sample."""
        with self._lock:
            return dict(self._samples)

    def clear(self, **labels) -> None:
        """Drop one labeled sample (e.g. a deregistered node's gauge)."""
        key = self._key(labels)
        with self._lock:
            self._samples.pop(key, None)

    def render(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {_escape_help(self.help)}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        samples = self.samples()
        if not samples:
            # An untouched family still reports: a flat 0 line keeps
            # "the counter exists and is zero" distinguishable from
            # "the endpoint forgot the counter".
            lines.append(f"{self.name} 0")
            return lines
        for key in sorted(samples):
            if key:
                labels = ",".join(
                    f'{k}="{_escape_label_value(v)}"' for k, v in key
                )
                lines.append(
                    f"{self.name}{{{labels}}} {_format_value(samples[key])}"
                )
            else:
                lines.append(f"{self.name} {_format_value(samples[key])}")
        return lines


class Counter(Metric):
    """A monotonically increasing sample per label set."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc({amount!r}))"
            )
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def set_total(self, value: float, **labels) -> None:
        """Overwrite the running total — the mirror hook for totals
        tracked elsewhere (e.g. :meth:`WorkerPool.counters` snapshots
        copied in by a registry collector). Never below the current
        value: a counter that goes backwards breaks every scraper."""
        key = self._key(labels)
        with self._lock:
            if value < self._samples.get(key, 0.0):
                raise ConfigurationError(
                    f"counter {self.name!r} cannot decrease "
                    f"(set_total({value!r}))"
                )
            self._samples[key] = value


class Gauge(Metric):
    """A freely settable sample per label set."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._samples[key] = float(value)

    def inc(self, amount: float = 1, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        self.inc(-amount, **labels)


class MetricsRegistry:
    """The metric families one service exposes, rendered on demand.

    ``counter(name)`` / ``gauge(name)`` are idempotent per name — the
    first call creates the family, later calls return it (a name can
    never be both kinds). ``collect(fn)`` registers a callback run at
    the top of every :meth:`render`, which is where gauges derived from
    live state (queue depths, node health) get refreshed — the scrape
    sees the instant's truth without the hot path paying a gauge write
    per event.
    """

    #: Lock discipline, checked by ``python -m repro lint`` (R201).
    _GUARDED_BY = {"_metrics": "_lock", "_collectors": "_lock"}

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}
        self._collectors: List[Callable[[], None]] = []
        self._lock = threading.Lock()

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._family(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._family(Gauge, name, help_text)

    def _family(self, cls, name: str, help_text: str) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ConfigurationError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind}, not a {cls.kind}"
                    )
                return existing
            metric = self._metrics[name] = cls(name, help_text)
            return metric

    def collect(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` at the start of every render (scrape-time refresh)."""
        with self._lock:
            self._collectors.append(fn)

    def render(self) -> str:
        """The full exposition document, trailing newline included."""
        with self._lock:
            collectors = list(self._collectors)
            metrics = list(self._metrics.values())
        for fn in collectors:
            fn()
        lines: List[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


class ThroughputMeter:
    """Sliding-window events/second (the ``*_per_second`` gauges).

    ``observe(n)`` records ``n`` events now; ``rate()`` divides the
    window's events by the window span. The span is clamped below at
    one second so a burst in the first milliseconds does not report an
    absurd instantaneous rate, and above at ``window`` so old traffic
    ages out.
    """

    #: Lock discipline, checked by ``python -m repro lint`` (R201).
    _GUARDED_BY = {"_events": "_lock"}

    def __init__(self, window: float = 60.0, clock=time.monotonic):
        if not window > 0:
            raise ConfigurationError(f"window must be positive, got {window!r}")
        self.window = window
        self._clock = clock
        self._events: "deque" = deque()  # (timestamp, count)
        self._started = clock()
        self._lock = threading.Lock()

    def _trim_locked(self, now: float) -> None:
        horizon = now - self.window
        while self._events and self._events[0][0] < horizon:
            self._events.popleft()

    def observe(self, count: float = 1) -> None:
        now = self._clock()
        with self._lock:
            self._events.append((now, count))
            self._trim_locked(now)

    def rate(self) -> float:
        now = self._clock()
        with self._lock:
            self._trim_locked(now)
            total = sum(count for _, count in self._events)
            span = min(now - self._started, self.window)
        return total / max(span, 1.0)


def _unescape_label_value(value: str) -> str:
    out, i = [], 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append("\n" if nxt == "n" else nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def parse_text(text: str) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Parse (and thereby validate) a text-format exposition document.

    Returns ``{family name: [(labels, value), ...]}``. Raises
    :class:`~repro.util.errors.ConfigurationError` on any line that is
    neither a comment nor a well-formed sample — the assertion the
    tests and the CI ``curl | parse`` smoke stand on.
    """
    families: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    typed: Dict[str, str] = {}
    for number, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4 or not _NAME_RE.match(parts[2]):
                raise ConfigurationError(f"line {number}: bad TYPE line {line!r}")
            typed[parts[2]] = parts[3]
            families.setdefault(parts[2], [])
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ConfigurationError(f"line {number}: bad sample line {line!r}")
        labels: Dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            for pair in re.split(r',(?=[a-zA-Z_])', raw.rstrip(",")):
                pair_match = _LABEL_PAIR_RE.match(pair)
                if pair_match is None:
                    raise ConfigurationError(
                        f"line {number}: bad label pair {pair!r}"
                    )
                labels[pair_match.group("name")] = _unescape_label_value(
                    pair_match.group("value")
                )
        try:
            value = float(match.group("value"))
        except ValueError:
            raise ConfigurationError(
                f"line {number}: bad sample value {line!r}"
            ) from None
        name = match.group("name")
        if name not in typed:
            raise ConfigurationError(
                f"line {number}: sample {name!r} has no preceding TYPE line"
            )
        families.setdefault(name, []).append((labels, value))
    return families
