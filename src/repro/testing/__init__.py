"""Reusable adversary scaffolding for tests and fuzz experiments.

- :mod:`repro.testing.scripted` — strategies that replay a fixed action
  script, for deterministic protocol-level tests;
- :mod:`repro.testing.fuzz` — randomized deviations: per-event behaviour
  sampled from (forward / buffer / drop / inject / replay-own-history),
  used to search for biasing deviations the structured attacks miss
  (empirical support for Theorem 5.1's resilience claim).
"""

from repro.testing.scripted import ScriptedStrategy, Step
from repro.testing.fuzz import (
    FuzzBehavior,
    RandomDeviationStrategy,
    random_deviation_protocol,
    deviation_search,
)

__all__ = [
    "ScriptedStrategy",
    "Step",
    "FuzzBehavior",
    "RandomDeviationStrategy",
    "random_deviation_protocol",
    "deviation_search",
]
