"""Randomized deviations: searching for attacks the paper didn't write.

Theorem 5.1 proves no small coalition can bias A-LEADuni, but the
experiments so far only run the paper's *structured* attacks. The fuzzer
samples a space of unstructured deviations — per-receive behaviour drawn
from {forward, buffer, drop, inject-random, replay-history} with a
randomized final burst — and measures what they achieve. The resilience
claim predicts: every sampled deviation either triggers punishment
(``FAIL``) or leaves the outcome distribution effectively uniform;
:func:`deviation_search` quantifies exactly that.

This is *empirical support*, not proof — but it is the strongest kind of
evidence a reproduction can add beyond re-running the author's own
attacks, and it would catch a broken punishment mechanism instantly.
"""

import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from repro.attacks.placement import RingPlacement
from repro.protocols.alead_uni import ALeadNormalStrategy, ALeadOriginStrategy
from repro.sim.execution import FAIL
from repro.sim.strategy import Context, Strategy
from repro.sim.topology import Topology
from repro.util.errors import ConfigurationError
from repro.util.modmath import canonical_mod

#: Per-receive actions the fuzzer samples from.
ACTIONS = ("forward", "buffer", "drop", "inject", "replay")


@dataclass(frozen=True)
class FuzzBehavior:
    """A sampled deviation: per-receive action weights + burst shape.

    ``weights`` orders :data:`ACTIONS`; ``burst_at`` is the receive count
    at which the adversary emits ``burst_len`` extra values (steering-
    style), drawn randomly; ``final_claim`` is the output it terminates
    with once its receive budget ``lifetime`` is spent.
    """

    seed: int
    weights: tuple
    burst_at: int
    burst_len: int
    lifetime: int

    @classmethod
    def sample(cls, n: int, rng: random.Random) -> "FuzzBehavior":
        return cls(
            seed=rng.randrange(2**31),
            weights=tuple(rng.random() + 0.05 for _ in ACTIONS),
            burst_at=rng.randrange(1, n + 1),
            burst_len=rng.randrange(0, 4),
            lifetime=n,
        )


class RandomDeviationStrategy(Strategy):
    """Executes a :class:`FuzzBehavior` on the A-LEADuni message plane."""

    def __init__(self, n: int, behavior: FuzzBehavior):
        self.n = n
        self.behavior = behavior
        self.rng = random.Random(behavior.seed)
        self.buffered: Optional[int] = None
        self.history: List[int] = []
        self.receives = 0

    def on_wakeup(self, ctx: Context) -> None:
        pass

    def on_receive(self, ctx: Context, value, sender) -> None:
        value = canonical_mod(int(value), self.n)
        self.history.append(value)
        self.receives += 1
        action = self.rng.choices(ACTIONS, weights=self.behavior.weights)[0]
        if action == "forward":
            ctx.send_next(value)
        elif action == "buffer":
            if self.buffered is not None:
                ctx.send_next(self.buffered)
            self.buffered = value
        elif action == "inject":
            ctx.send_next(self.rng.randrange(self.n))
        elif action == "replay":
            ctx.send_next(self.rng.choice(self.history))
        # "drop": send nothing.
        if self.receives == self.behavior.burst_at:
            for _ in range(self.behavior.burst_len):
                ctx.send_next(self.rng.randrange(self.n))
        if self.receives >= self.behavior.lifetime and not ctx.terminated:
            ctx.terminate(self.rng.randrange(1, self.n + 1))


def random_deviation_protocol(
    topology: Topology,
    placement: RingPlacement,
    behaviors: List[FuzzBehavior],
) -> Dict[Hashable, Strategy]:
    """Honest A-LEADuni + one sampled behaviour per coalition member."""
    n = len(topology)
    if len(behaviors) != placement.k:
        raise ConfigurationError("one behaviour per coalition member required")
    protocol: Dict[Hashable, Strategy] = {}
    coalition = set(placement.positions)
    for pid in topology.nodes:
        if pid in coalition:
            continue
        protocol[pid] = (
            ALeadOriginStrategy(n) if pid == 1 else ALeadNormalStrategy(n)
        )
    for behavior, pid in zip(behaviors, placement.positions):
        protocol[pid] = RandomDeviationStrategy(n, behavior)
    return protocol


@dataclass
class DeviationSearchReport:
    """Aggregate of a fuzz campaign against A-LEADuni."""

    n: int
    k: int
    samples: int
    punished: int  # runs with outcome FAIL
    valid_outcomes: Dict[int, int]  # histogram of non-FAIL outcomes

    @property
    def punishment_rate(self) -> float:
        return self.punished / self.samples if self.samples else 0.0

    @property
    def max_outcome_rate(self) -> float:
        """Highest single-outcome frequency among *all* samples.

        A deviation family that biased the election would concentrate
        mass here; resilience predicts this stays near the uniform noise
        floor of the surviving runs.
        """
        if not self.valid_outcomes:
            return 0.0
        return max(self.valid_outcomes.values()) / self.samples


def deviation_search(
    n: int,
    k: int,
    samples: int,
    master_seed: int = 0,
    workers: int = 1,
    pool=None,
) -> DeviationSearchReport:
    """Sample ``samples`` random k-coalition deviations and score them.

    Each sample is one trial of the registered ``fuzz/random-deviation``
    scenario (:mod:`repro.testing.scenarios`): the coalition's behaviours
    are drawn from that trial's private stream, so sample ``i`` is a pure
    function of ``(master_seed, i)`` — reproducible at any ``workers``
    count, and campaigns parallelise over worker processes for free.
    Repeated searches (parameter scans, CI fuzz loops) can pass a shared
    ``pool`` so worker processes spawn once; trial outcomes come back as
    worker-side folded counters, never per-sample lists.
    """
    from repro.experiments.runner import ExperimentRunner

    with ExperimentRunner(workers=workers, pool=pool) as runner:
        result = runner.run(
            "fuzz/random-deviation",
            trials=samples,
            base_seed=master_seed,
            params={"n": n, "k": k},
            keep_outcomes=False,
        )
    histogram: Dict[int, int] = {
        outcome: count
        for outcome, count in result.distribution.counts.items()
        if outcome != FAIL
    }
    return DeviationSearchReport(
        n=n,
        k=k,
        samples=samples,
        punished=result.distribution.fail_count,
        valid_outcomes=histogram,
    )
