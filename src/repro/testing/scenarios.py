"""Scenario spec for the unstructured-deviation fuzzer (Theorem 5.1).

One trial samples a fresh coalition of random behaviours from the
trial's private ``scenario`` stream and runs them against honest
A-LEADuni — so the whole fuzz campaign inherits the runner's
determinism (trial *i* always samples the same behaviours, whatever the
worker count) and its parallelism for free.

The success predicate is *punishment*: Theorem 5.1 predicts every
unstructured deviation is either caught (FAIL) or non-biasing, so a
high success rate plus a flat surviving-outcome histogram is the
resilience evidence :func:`repro.testing.fuzz.deviation_search` reports.
"""

from repro.attacks.placement import RingPlacement
from repro.experiments.scenario import (
    ScenarioSpec,
    punished,
    register_scenario,
    ring_topology,
)
from repro.testing.fuzz import FuzzBehavior, random_deviation_protocol


def _random_deviation(topo, params, rng):
    """Sample one coalition of behaviours from the trial's own stream."""
    n = len(topo)
    k = params["k"]
    placement = RingPlacement.equal_spacing(n, k)
    behaviors = [FuzzBehavior.sample(n, rng) for _ in range(k)]
    return random_deviation_protocol(topo, placement, behaviors)


register_scenario(
    ScenarioSpec(
        name="fuzz/random-deviation",
        description="random k-coalition deviation vs A-LEADuni (Thm 5.1)",
        build_topology=ring_topology,
        build_protocol=_random_deviation,
        defaults={"n": 25, "k": 3},
        success=punished,
        tags=("fuzz", "attack"),
    )
)
