"""Scripted strategies: replay a fixed action sequence.

A :class:`ScriptedStrategy` executes a list of :class:`Step` objects —
one per callback invocation (wakeup first, then each receive). Useful
for pinning executor semantics and for constructing minimal
counterexample deviations in tests without writing a strategy class
each time.
"""

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.sim.strategy import Context, Strategy


@dataclass
class Step:
    """Actions for one callback: sends (to unique successor) and/or end.

    ``sends`` values are emitted via ``ctx.send_next`` in order. If
    ``terminate`` is not the sentinel ``_UNSET``, the strategy
    terminates with that output after sending. ``abort`` terminates
    with ⊥ instead.
    """

    sends: Tuple[Any, ...] = ()
    terminate: Any = "__UNSET__"
    abort: bool = False


class ScriptedStrategy(Strategy):
    """Replays ``steps``; silent once the script is exhausted."""

    def __init__(self, steps: List[Step]):
        self.steps = list(steps)
        self.cursor = 0
        self.history: List[Tuple[Any, Any]] = []  # (value, sender) pairs

    def _play(self, ctx: Context) -> None:
        if self.cursor >= len(self.steps):
            return
        step = self.steps[self.cursor]
        self.cursor += 1
        for value in step.sends:
            ctx.send_next(value)
        if step.abort:
            ctx.abort("scripted abort")
        elif step.terminate != "__UNSET__":
            ctx.terminate(step.terminate)

    def on_wakeup(self, ctx: Context) -> None:
        self._play(ctx)

    def on_receive(self, ctx: Context, value: Any, sender: Any) -> None:
        self.history.append((value, sender))
        self._play(ctx)
