"""Command-line interface: run protocols, attacks, and measurements.

Examples::

    python -m repro run --protocol phase-async --n 64 --seed 3
    python -m repro attack --name cubic --n 111 --k 6 --target 42
    python -m repro bias --protocol alead-uni --n 8 --trials 500
    python -m repro sweep --scenario attack/cubic --trials 200 --workers 4
    python -m repro sweep --list
    python -m repro certificate --graph ring --n 12

Everything printed is derived from the same public API the examples and
benches use; the CLI exists so downstream users can poke the system
without writing a script. Protocol and attack wiring comes from the
scenario registry (:mod:`repro.experiments`), so the CLI, benchmarks,
and examples all run exactly the same setups.
"""

import argparse
import json
import os
import sys
from typing import Optional

from repro.analysis.bias import empirical_bias
from repro.analysis.distribution import (
    chi_square_uniformity,
    estimate_distribution,
)
from repro.experiments import (
    all_scenarios,
    expand_grid,
    get_scenario,
    sweep_scenario,
)
from repro.protocols import (
    alead_uni_protocol,
    async_complete_protocol,
    basic_lead_protocol,
    phase_async_protocol,
)
from repro.sim.execution import run_protocol
from repro.sim.topology import complete_graph, unidirectional_ring
from repro.trees import impossibility_certificate
from repro.util.errors import ConfigurationError
from repro.util.rng import RngRegistry

PROTOCOLS = {
    "basic-lead": (basic_lead_protocol, "ring"),
    "alead-uni": (alead_uni_protocol, "ring"),
    "phase-async": (phase_async_protocol, "ring"),
    "async-complete": (async_complete_protocol, "complete"),
}

#: CLI attack name -> registered scenario. The CLI predates the registry
#: and keeps its short names; the wiring behind them is shared.
ATTACK_SCENARIOS = {
    "basic-cheat": "attack/basic-cheat",
    "rushing": "attack/equal-spacing",
    "random-location": "attack/random-location",
    "cubic": "attack/cubic",
    "partial-sum": "attack/partial-sum",
    "phase-rushing": "attack/phase-rushing",
    "shamir-pool": "attack/shamir-pool",
}


def _topology(kind: str, n: int):
    return unidirectional_ring(n) if kind == "ring" else complete_graph(n)


def _cmd_run(args) -> int:
    maker, kind = PROTOCOLS[args.protocol]
    topo = _topology(kind, args.n)
    result = run_protocol(
        topo, maker(topo), seed=args.seed, max_steps=args.max_steps
    )
    print(f"protocol : {args.protocol} (n={args.n}, seed={args.seed})")
    print(f"outcome  : {result.outcome}")
    print(f"steps    : {result.steps}")
    if result.failed:
        print(f"reason   : {result.fail_reason}")
    return 0 if not result.failed else 1


def _cmd_attack(args) -> int:
    spec = get_scenario(ATTACK_SCENARIOS[args.name])
    overrides = {"n": args.n, "target": args.target}
    if args.k is not None:
        if "k" not in spec.defaults:
            raise SystemExit(
                f"attack {args.name!r} does not take --k "
                f"(parameters: {sorted(spec.defaults)})"
            )
        overrides["k"] = args.k
    params = spec.resolve_params(overrides)
    registry = RngRegistry(args.seed)
    topo = spec.build_topology(params)
    protocol = spec.build_protocol(topo, params, registry.stream("scenario"))
    result = run_protocol(
        topo, protocol, rng=registry, max_steps=args.max_steps
    )
    forced = result.outcome == args.target
    print(f"attack   : {args.name} (n={args.n}, target={args.target})")
    print(f"outcome  : {result.outcome} ({'FORCED' if forced else 'not forced'})")
    if result.failed:
        print(f"reason   : {result.fail_reason}")
    return 0 if forced else 1


def _cmd_bias(args) -> int:
    maker, kind = PROTOCOLS[args.protocol]
    topo = _topology(kind, args.n)
    dist = estimate_distribution(
        topo,
        maker,
        trials=args.trials,
        base_seed=args.seed,
        workers=args.workers,
        max_steps=args.max_steps,
    )
    report = empirical_bias(topo, maker, args.trials, distribution=dist)
    print(f"protocol : {args.protocol} (n={args.n}, {args.trials} trials)")
    print(f"fail rate: {report.fail_rate:.4f}")
    print(f"max Pr   : {report.max_probability:.4f} (1/n = {1/args.n:.4f})")
    print(f"epsilon  : {report.epsilon:.4f}")
    print(f"chi2 p   : {chi_square_uniformity(dist):.4f}")
    # Every single trial failing means the estimate is vacuous (e.g. the
    # step budget was set below what the protocol needs).
    return 1 if dist.trials and dist.fail_count == dist.trials else 0


def _coerce_param(text: str):
    """CLI parameter literal -> int / float / bool / None / str."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    return text


def _parse_grid(pairs):
    """``["n=8,16", "k=4"]`` -> ``{"n": [8, 16], "k": [4]}``."""
    grid = {}
    for pair in pairs:
        key, sep, values = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--param expects KEY=VALUE[,VALUE...], got {pair!r}")
        grid[key] = [_coerce_param(v) for v in values.split(",")]
    return grid


def _cmd_sweep(args) -> int:
    if args.list:
        for spec in all_scenarios():
            defaults = ", ".join(
                f"{k}={v}" for k, v in sorted(spec.defaults.items())
            )
            print(f"{spec.name:<24} {spec.description}  [{defaults}]")
        return 0
    if not args.scenario:
        raise SystemExit("sweep requires --scenario NAME (or --list)")
    if args.trials < 0:
        raise SystemExit(f"--trials must be >= 0, got {args.trials}")
    grid = _parse_grid(args.param)
    # Validate the scenario and every grid point's keys up front, so a
    # typo'd re-run fails before touching a previous run's --out file.
    try:
        spec = get_scenario(args.scenario)
        for point in expand_grid(grid):
            spec.resolve_params(point)
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None
    # Parameter *values* can still be infeasible (e.g. a placement that
    # does not fit the ring), and that only surfaces when the grid point
    # runs — so rows stream to a temp file that replaces --out atomically
    # on success, never clobbering earlier results on a failed run.
    tmp_path = f"{args.out}.tmp" if args.out else None
    try:
        out = open(tmp_path, "w") if tmp_path else None
    except OSError as exc:
        raise SystemExit(f"cannot write --out file: {exc}") from None
    failure = None
    try:
        for result in sweep_scenario(
            args.scenario,
            trials=args.trials,
            grid=grid,
            base_seed=args.seed,
            workers=args.workers,
            max_steps=args.max_steps,
        ):
            line = json.dumps(result.to_row(), sort_keys=True)
            print(line)
            if out:
                out.write(line + "\n")
            print(
                f"  [{result.scenario} {result.params}: "
                f"{result.trials} trials in {result.elapsed:.2f}s]",
                file=sys.stderr,
            )
    except ConfigurationError as exc:
        failure = exc
    finally:
        if out:
            out.close()
    if failure is not None:
        if tmp_path:
            os.remove(tmp_path)
        raise SystemExit(f"sweep failed: {failure}")
    if tmp_path:
        os.replace(tmp_path, args.out)
    return 0


def _cmd_certificate(args) -> int:
    n = args.n
    if args.graph == "ring":
        nodes = list(range(1, n + 1))
        edges = [(i, i % n + 1) for i in nodes]
    elif args.graph == "complete":
        nodes = list(range(1, n + 1))
        edges = [(u, v) for u in nodes for v in nodes if u < v]
    else:
        raise SystemExit(f"unknown graph {args.graph!r}")
    cert = impossibility_certificate(nodes, edges)
    print(cert["statement"])
    print(f"parts    : {cert['parts']}")
    return 0


def _cmd_frontier(args) -> int:
    from repro.analysis.frontier import forcing_frontier

    for point in forcing_frontier(args.sizes, seeds=1):
        print(
            f"n={point.n:<5} smallest forcing k={point.k_min:<3} "
            f"({point.family}); proven gap "
            f"[n^(1/4)={point.lower_bound:.1f}, "
            f"2n^(1/3)={point.upper_bound:.1f}], "
            f"conjecture n^(1/3)={point.conjecture:.1f}"
        )
    return 0


def _cmd_fuzz(args) -> int:
    from repro.testing.fuzz import deviation_search

    report = deviation_search(
        args.n, args.k, samples=args.samples, master_seed=args.seed
    )
    print(f"sampled deviations : {report.samples} (n={args.n}, k={args.k})")
    print(f"punished (FAIL)    : {report.punished} "
          f"({report.punishment_rate:.0%})")
    print(f"max outcome rate   : {report.max_outcome_rate:.3f} "
          f"(attack-level forcing would be ~1.0)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fair leader election for rational agents — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="run a protocol honestly")
    p.add_argument("--protocol", choices=sorted(PROTOCOLS), required=True)
    p.add_argument("--n", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--max-steps", type=int, default=None,
        help="delivery budget before declaring non-termination",
    )
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("attack", help="run an adversarial deviation")
    p.add_argument(
        "--name",
        choices=sorted(ATTACK_SCENARIOS),
        required=True,
    )
    p.add_argument("--n", type=int, default=64)
    p.add_argument("--k", type=int, default=None)
    p.add_argument("--target", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--max-steps", type=int, default=None,
        help="delivery budget before declaring non-termination",
    )
    p.set_defaults(func=_cmd_attack)

    p = sub.add_parser("bias", help="estimate a protocol's bias")
    p.add_argument("--protocol", choices=sorted(PROTOCOLS), required=True)
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--trials", type=int, default=400)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1)
    p.add_argument(
        "--max-steps", type=int, default=None,
        help="per-trial delivery budget",
    )
    p.set_defaults(func=_cmd_bias)

    p = sub.add_parser(
        "sweep",
        help="run a registered scenario grid; one JSON row per grid point",
    )
    p.add_argument("--scenario", default=None, help="registry name, e.g. attack/cubic")
    p.add_argument("--list", action="store_true", help="list registered scenarios")
    p.add_argument("--trials", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1)
    p.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=V[,V...]",
        help="pin a parameter or sweep comma-separated values (repeatable)",
    )
    p.add_argument(
        "--max-steps", type=int, default=None,
        help="per-trial delivery budget",
    )
    p.add_argument("--out", default=None, help="also write JSON rows to this file")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "certificate", help="Theorem 7.2 impossibility certificate"
    )
    p.add_argument("--graph", choices=["ring", "complete"], default="ring")
    p.add_argument("--n", type=int, default=12)
    p.set_defaults(func=_cmd_certificate)

    p = sub.add_parser(
        "frontier",
        help="Conjecture 4.7: smallest forcing coalition per ring size",
    )
    p.add_argument("--sizes", type=int, nargs="+", default=[64, 144, 256])
    p.set_defaults(func=_cmd_frontier)

    p = sub.add_parser(
        "fuzz", help="random-deviation search against A-LEADuni (Thm 5.1)"
    )
    p.add_argument("--n", type=int, default=25)
    p.add_argument("--k", type=int, default=3)
    p.add_argument("--samples", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_fuzz)
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
