"""Command-line interface: run protocols, attacks, and measurements.

Examples::

    python -m repro run --protocol phase-async --n 64 --seed 3
    python -m repro attack --name cubic --n 111 --k 6 --target 42
    python -m repro bias --protocol alead-uni --n 8 --trials 500
    python -m repro sweep --scenario attack/cubic --trials 200 --workers 4
    python -m repro sweep --list
    python -m repro campaign manifest.json --out rows.jsonl --resume --workers auto
    python -m repro certificate --graph ring --n 12

Everything printed is derived from the same public API the examples and
benches use; the CLI exists so downstream users can poke the system
without writing a script. Protocol and attack wiring comes from the
scenario registry (:mod:`repro.experiments`), so the CLI, benchmarks,
and examples all run exactly the same setups.
"""

import argparse
import json
import os
import sys
from typing import Optional

from repro.analysis.bias import empirical_bias
from repro.analysis.distribution import (
    chi_square_uniformity,
    estimate_distribution,
)
from repro.experiments import (
    AdaptiveChunker,
    CampaignDeadline,
    FailRateTargetPolicy,
    PointScheduler,
    RelativePrecisionPolicy,
    ResultStore,
    RowWriter,
    StoreRowWriter,
    WilsonWidthPolicy,
    WorkerPool,
    all_scenarios,
    coerce_param,
    expand_grid,
    fsync_directory,
    get_scenario,
    is_store_path,
    load_completed_keys,
    load_cost_model,
    load_manifest,
    resolve_workers,
    retry_identity,
    row_resume_key,
    run_campaign,
    schedule_names,
    sweep_scenario,
    timing_record,
    timings_path,
)
from repro.protocols import (
    alead_uni_protocol,
    async_complete_protocol,
    basic_lead_protocol,
    phase_async_protocol,
)
from repro.sim.execution import run_protocol
from repro.sim.topology import complete_graph, unidirectional_ring
from repro.trees import impossibility_certificate
from repro.util.errors import ConfigurationError
from repro.util.rng import RngRegistry

PROTOCOLS = {
    "basic-lead": (basic_lead_protocol, "ring"),
    "alead-uni": (alead_uni_protocol, "ring"),
    "phase-async": (phase_async_protocol, "ring"),
    "async-complete": (async_complete_protocol, "complete"),
}

#: CLI attack name -> registered scenario. The CLI predates the registry
#: and keeps its short names; the wiring behind them is shared.
ATTACK_SCENARIOS = {
    "basic-cheat": "attack/basic-cheat",
    "rushing": "attack/equal-spacing",
    "random-location": "attack/random-location",
    "cubic": "attack/cubic",
    "partial-sum": "attack/partial-sum",
    "phase-rushing": "attack/phase-rushing",
    "shamir-pool": "attack/shamir-pool",
}


#: Implicit adaptive-budget floor when --min-trials is not given.
DEFAULT_MIN_TRIALS = 32

#: Exit code when `campaign --max-wall-clock` expires: the run is neither
#: a success (work remains) nor a failure (finished rows were
#: checkpointed to --out) — overnight wrappers key a `--resume` off it.
EXIT_DEADLINE = 3


def _topology(kind: str, n: int):
    return unidirectional_ring(n) if kind == "ring" else complete_graph(n)


def _cmd_run(args) -> int:
    maker, kind = PROTOCOLS[args.protocol]
    topo = _topology(kind, args.n)
    result = run_protocol(
        topo, maker(topo), seed=args.seed, max_steps=args.max_steps
    )
    print(f"protocol : {args.protocol} (n={args.n}, seed={args.seed})")
    print(f"outcome  : {result.outcome}")
    print(f"steps    : {result.steps}")
    if result.failed:
        print(f"reason   : {result.fail_reason}")
    return 0 if not result.failed else 1


def _cmd_attack(args) -> int:
    spec = get_scenario(ATTACK_SCENARIOS[args.name])
    overrides = {"n": args.n, "target": args.target}
    if args.k is not None:
        if "k" not in spec.defaults:
            raise SystemExit(
                f"attack {args.name!r} does not take --k "
                f"(parameters: {sorted(spec.defaults)})"
            )
        overrides["k"] = args.k
    params = spec.resolve_params(overrides)
    registry = RngRegistry(args.seed)
    topo = spec.build_topology(params)
    protocol = spec.build_protocol(topo, params, registry.stream("scenario"))
    result = run_protocol(
        topo, protocol, rng=registry, max_steps=args.max_steps
    )
    forced = result.outcome == args.target
    print(f"attack   : {args.name} (n={args.n}, target={args.target})")
    print(f"outcome  : {result.outcome} ({'FORCED' if forced else 'not forced'})")
    if result.failed:
        print(f"reason   : {result.fail_reason}")
    return 0 if forced else 1


def _cmd_bias(args) -> int:
    maker, kind = PROTOCOLS[args.protocol]
    topo = _topology(kind, args.n)
    dist = estimate_distribution(
        topo,
        maker,
        trials=args.trials,
        base_seed=args.seed,
        workers=resolve_workers(args.workers),
        max_steps=args.max_steps,
    )
    report = empirical_bias(topo, maker, args.trials, distribution=dist)
    print(f"protocol : {args.protocol} (n={args.n}, {args.trials} trials)")
    print(f"fail rate: {report.fail_rate:.4f}")
    print(f"max Pr   : {report.max_probability:.4f} (1/n = {1/args.n:.4f})")
    print(f"epsilon  : {report.epsilon:.4f}")
    print(f"chi2 p   : {chi_square_uniformity(dist):.4f}")
    # Every single trial failing means the estimate is vacuous (e.g. the
    # step budget was set below what the protocol needs).
    return 1 if dist.trials and dist.fail_count == dist.trials else 0


def _workers_arg(text: str):
    """``--workers`` value: a positive integer, or ``auto`` to derive a
    clamped count from ``os.cpu_count()`` (see ``resolve_workers``)."""
    if text == "auto":
        return "auto"
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {text!r}"
        ) from None


def _parse_grid(pairs):
    """``["n=8,16", "k=4"]`` -> ``{"n": [8, 16], "k": [4]}`` (literals
    coerced by the shared :func:`~repro.experiments.sweep.coerce_param`
    grammar the estimate service's query strings use too)."""
    grid = {}
    for pair in pairs:
        key, sep, values = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--param expects KEY=VALUE[,VALUE...], got {pair!r}")
        try:
            grid[key] = [coerce_param(v) for v in values.split(",")]
        except ConfigurationError as exc:
            raise SystemExit(f"--param {pair!r}: {exc}") from None
    return grid


def _read_rows_file(path: str, strict: bool = True):
    """Lines of ``path`` (empty if absent), final newline normalised so
    an externally written file whose last line lacks ``\\n`` cannot get
    an appended row concatenated onto it.

    ``strict=False`` turns an unreadable file into a warning plus an
    empty result instead of death — what ``--dry-run`` wants, since it
    only *reports* resume status and writes nothing.
    """
    if not os.path.exists(path):
        return []
    try:
        with open(path) as f:
            lines = f.readlines()
    except OSError as exc:
        if not strict:
            print(
                f"  [warning: cannot read {path}: {exc}; "
                "treating every point as pending]",
                file=sys.stderr,
            )
            return []
        raise SystemExit(f"cannot read --out file: {exc}") from None
    if lines and not lines[-1].endswith("\n"):
        lines[-1] += "\n"
    return lines


def _salvageable_rows(tmp_path: str, completed, strict: bool = True):
    """Well-formed sweep rows stranded in an interrupted run's staging
    file, minus those already in ``completed``. Malformed lines (torn
    final write, corrupt budget objects), timed-out rows, and foreign
    content are dropped — they can only cause a re-run, never a skip."""
    rows = []
    seen = set(completed)
    for line in _read_rows_file(tmp_path, strict=strict):
        try:
            row = json.loads(line)
            key = row_resume_key(row)
        except (ValueError, KeyError, TypeError, ConfigurationError):
            continue
        if key not in seen:
            seen.add(key)
            rows.append(row)
    return rows


def _completed_keys_reporting(lines, where: str):
    """``load_completed_keys`` with the skip report printed to stderr.

    A killed run's torn trailing line and a deadline's timed-out rows
    both contribute no resume key — the difference is tone: torn lines
    get a *warning* (data was lost mid-write; the affected point simply
    re-runs), timed-out rows an informational note (their retry is the
    contract working as designed).
    """
    skipped = {"malformed": 0, "timed-out": 0}

    def _note(_number, _line, reason):
        skipped[reason] += 1

    completed = load_completed_keys(lines, on_skip=_note)
    if skipped["malformed"]:
        print(
            f"  [warning: skipped {skipped['malformed']} malformed line(s) "
            f"in {where} (torn trailing write from a killed run?); their "
            "points will re-run]",
            file=sys.stderr,
        )
    if skipped["timed-out"]:
        print(
            f"  [note: {skipped['timed-out']} timed-out row(s) in {where} "
            "will be retried]",
            file=sys.stderr,
        )
    return completed


def _result_retry_identity(result) -> str:
    """:func:`~repro.experiments.campaign.retry_identity` of a freshly
    produced result row — what matches it against a held-back timed-out
    marker."""
    return retry_identity(
        result.scenario,
        result.params,
        result.base_seed,
        result.max_steps,
        result.budget,
    )


def _hold_back_stale_timed_out(existing_lines, points, completed):
    """Split out timed-out rows for points this campaign will retry.

    A timed-out row is a retry marker, not a result; once its point is
    re-run it must not survive next to the fresh row — a completed retry
    would leave a phantom partial row double-counting the point, and
    every later ``--resume`` would keep announcing a retry that already
    happened. But the marker may only be *replaced*, never dropped
    outright: if this run ends (deadline, Ctrl-C) before the retry
    produced its fresh row, the held-back marker is written back, so the
    store never loses the record that the point is still owed. Rows for
    points *not* in this manifest (shared stores) are kept untouched.

    Markers whose point already has a *completed* row (some other run —
    a sweep over the shared store, an unguarded campaign — finished the
    retry without pruning) are simply dropped: the retry they announce
    already happened, and keeping them would double-count the point and
    re-announce the retry forever.

    Returns ``(kept_lines, held)`` where ``held`` maps retry identity ->
    original line; :func:`_emit_rows` writes back whatever was not
    replaced by a fresh row.
    """
    retrying = set()
    superseded = set()
    for point in points:
        identity = retry_identity(
            point.scenario,
            point.params,
            point.base_seed,
            point.max_steps,
            point.budget,
        )
        if point.key() in completed:
            superseded.add(identity)
        else:
            retrying.add(identity)
    kept = []
    held = {}
    if not retrying and not superseded:
        return existing_lines, held
    for line in existing_lines:
        candidate = None
        try:
            row = json.loads(line)
            if isinstance(row, dict) and row.get("timed_out"):
                candidate = retry_identity(
                    row["scenario"],
                    row["params"],
                    row["base_seed"],
                    row.get("max_steps"),
                    row.get("budget"),
                )
        except (ValueError, KeyError, TypeError, ConfigurationError):
            # ConfigurationError: a torn budget dict in the marker — an
            # unmatchable marker is just a kept foreign line.
            pass
        # Retry pending wins over superseded when both match (two
        # manifest points sharing everything but trials): the marker is
        # then still a live claim and gets the hold-back treatment.
        if candidate is not None and candidate in retrying:
            held[candidate] = line
        elif candidate is not None and candidate in superseded:
            continue  # the completed row already supersedes the marker
        else:
            kept.append(line)
    return kept, held


def _store_completed_keys(path: str, strict: bool = True):
    """Completed resume keys of a SQLite ``--out`` target.

    A path with no database yet means no completed points (the store is
    created when rows stream in). ``strict=False`` mirrors
    :func:`_read_rows_file`: an unreadable store warns and reports every
    point pending instead of dying — the ``--dry-run`` posture.
    """
    if not os.path.exists(path):
        return set()
    try:
        with ResultStore(path) as store:
            return store.completed_keys()
    except ConfigurationError as exc:
        if not strict:
            print(
                f"  [warning: cannot read {path}: {exc}; "
                "treating every point as pending]",
                file=sys.stderr,
            )
            return set()
        raise SystemExit(f"cannot read --out store: {exc}") from None


def _load_resume_state(args):
    """The ``--resume`` bookkeeping shared by ``sweep`` and ``campaign``.

    Rows already present in a previous run's --out file: their grid
    points are skipped entirely, so an interrupted overnight run
    re-executes only what is missing. A hard interrupt (Ctrl-C, crash)
    leaves the finished rows in the .tmp staging file instead of --out
    — salvage those too, or resuming would both re-run them and then
    truncate the only copy when reopening the staging file.
    """
    if args.resume and not args.out:
        raise SystemExit("--resume requires --out (the file to resume into)")
    completed = set()
    existing_lines = []
    if args.resume:
        if is_store_path(args.out):
            # SQLite backend: the database is its own resume bookkeeping
            # — completed keys are an indexed read, appends are durable
            # in place (no staging file to salvage), and markers
            # supersede inside the store. Opening read-write creates the
            # database when this is the first run against the path.
            return _store_completed_keys(args.out), existing_lines
        existing_lines = _read_rows_file(args.out)
        completed = _completed_keys_reporting(existing_lines, args.out)
        for row in _salvageable_rows(f"{args.out}.tmp", completed):
            existing_lines.append(json.dumps(row, sort_keys=True) + "\n")
            completed.add(row_resume_key(row))
    return completed, existing_lines


class _EmitOutcome:
    """What streaming a result set actually did: rows run, points a
    deadline abandoned, whether the global deadline fired, and where
    this run's rows ended up (``--out`` itself, or the staging file
    when promoting would have clobbered a pre-existing store)."""

    def __init__(self):
        self.ran = 0
        self.timed_out = 0
        self.deadline: Optional[CampaignDeadline] = None
        self.checkpoint_path: Optional[str] = None


def _safe_checkpoint(args) -> str:
    """Promote the staging file to ``--out`` only when that cannot lose
    data, returning the path now holding this run's rows.

    A partial run's staging file holds only this run's rows (plus
    whatever ``--resume`` seeded). Promoting it over a pre-existing
    ``--out`` that was *not* seeded in would destroy the previous
    results — so in that one configuration the staging file is left in
    place instead (the ``--resume`` salvage path picks its rows up),
    and the old store survives untouched.
    """
    tmp_path = f"{args.out}.tmp"
    if args.resume or not os.path.exists(args.out):
        _finalize_out(tmp_path, args.out)
        return args.out
    return tmp_path


def _finalize_out(tmp_path: str, out_path: str) -> None:
    """Atomically promote the staging file to ``--out``.

    ``os.replace`` is atomic on POSIX; the directory fsync afterwards
    makes the *rename itself* durable, so a machine crash right after a
    checkpoint cannot resurrect the old file (best-effort — some
    platforms refuse directory handles)."""
    os.replace(tmp_path, out_path)
    fsync_directory(os.path.dirname(os.path.abspath(out_path)))


def _emit_rows(
    results,
    args,
    existing_lines,
    what: str,
    record_timings: bool = False,
    replaces: Optional[dict] = None,
) -> _EmitOutcome:
    """Stream result rows to stdout and (atomically) to ``--out``.

    Parameter *values* can still be infeasible (e.g. a placement that
    does not fit the ring), and that only surfaces when the grid point
    runs — so rows stream to a temp file that replaces --out atomically
    on success, never clobbering earlier results on a failed run. Under
    --resume the temp file starts as a copy of the previous rows and
    missing rows are appended. Every append goes through the fsync'd
    :class:`~repro.experiments.sweep.RowWriter`, so a killed run loses
    at most one torn trailing line (which the resume loader skips).

    Three early-stop shapes all leave a usable store:

    - ``ConfigurationError`` (bad parameter values): the staging file is
      discarded and --out keeps its previous contents;
    - :class:`CampaignDeadline` (--max-wall-clock): the staging file is
      *checkpointed* — promoted to --out, unless promotion would clobber
      a pre-existing store whose rows were not seeded in (no --resume),
      in which case the staging file itself is the checkpoint — and the
      deadline is reported on the returned outcome;
    - ``KeyboardInterrupt``: same safe checkpoint, then the interrupt
      re-raises, so a mid-campaign Ctrl-C leaves a resumable store
      without ever destroying a previous one.

    With ``record_timings`` (the campaign path), completed results also
    append an observed-cost record to the ``--out`` timing sidecar,
    which future ``--schedule longest-first`` runs read back as real
    per-trial seconds; sweeps have no scheduler to feed, so they leave
    no sidecar behind.

    ``replaces`` maps retry identities -> stale timed-out lines held
    back from ``existing_lines`` (see
    :func:`_hold_back_stale_timed_out`): a result for the same identity
    supersedes its line, and whatever was not superseded when the run
    stops — however it stops — is written back, so no retry marker is
    ever lost.

    A ``--out`` path with a store suffix (``.db``/``.sqlite``) swaps the
    JSONL appender for the SQLite
    :class:`~repro.experiments.store.StoreRowWriter`: appends are
    transactionally durable in place, so there is no staging file, no
    promotion, and nothing to discard — the database is the checkpoint
    at every instant, and marker supersession happens inside the store.
    The timing sidecar stays a JSONL file beside the database either
    way.
    """
    writer = timing_writer = None
    store_target = bool(args.out) and is_store_path(args.out)
    if args.out:
        try:
            if store_target:
                writer = StoreRowWriter(args.out)
            else:
                writer = RowWriter(f"{args.out}.tmp")
            if record_timings:
                timing_writer = RowWriter(timings_path(args.out), append=True)
        except OSError as exc:
            raise SystemExit(f"cannot write --out file: {exc}") from None
        except ConfigurationError as exc:
            raise SystemExit(f"cannot open --out store: {exc}") from None
    outcome = _EmitOutcome()
    held = dict(replaces) if replaces else {}

    def _write_back_held() -> None:
        """Re-append retry markers whose retry never produced a row."""
        if writer and held:
            for line in held.values():
                writer.append(line.rstrip("\n"))
            held.clear()

    failure = None
    try:
        if writer and existing_lines:
            writer.write_lines(existing_lines)
        for result in results:
            outcome.ran += 1
            outcome.timed_out += bool(result.timed_out)
            if held:
                held.pop(_result_retry_identity(result), None)
            line = json.dumps(result.to_row(), sort_keys=True)
            print(line)
            if writer:
                writer.append(line)
            if timing_writer:
                record = timing_record(result)
                if record is not None:
                    timing_writer.append(json.dumps(record, sort_keys=True))
            status = " TIMED OUT after" if result.timed_out else " trials in"
            print(
                f"  [{result.scenario} {result.params}: "
                f"{result.trials}{status} {result.elapsed:.2f}s]",
                file=sys.stderr,
            )
    except ConfigurationError as exc:
        failure = exc
    except CampaignDeadline as exc:
        outcome.deadline = exc
    except KeyboardInterrupt:
        if writer:
            _write_back_held()
            writer.close()
            dest = args.out if store_target else _safe_checkpoint(args)
            print(
                f"  [interrupted: {outcome.ran} finished row(s) "
                f"checkpointed to {dest}; --resume continues]",
                file=sys.stderr,
            )
        raise
    finally:
        if writer and failure is None:
            _write_back_held()
        if writer:
            writer.close()
        if timing_writer:
            timing_writer.close()
    if failure is not None:
        if writer and not store_target:
            # JSONL: discard the staging file so --out keeps its
            # previous contents. Store rows already written are real,
            # deterministic results — they stay, and a corrected re-run
            # resumes past them.
            os.remove(f"{args.out}.tmp")
        raise SystemExit(f"{what} failed: {failure}")
    if writer:
        if store_target:
            # Durable in place: nothing to promote.
            outcome.checkpoint_path = args.out
        elif outcome.deadline is not None:
            # A deadline run is partial: promote only when it cannot
            # clobber a store whose rows were not seeded into staging.
            outcome.checkpoint_path = _safe_checkpoint(args)
        else:
            _finalize_out(f"{args.out}.tmp", args.out)
            outcome.checkpoint_path = args.out
    return outcome


def _budget_from_args(args):
    """The adaptive-budget flags -> a registered budget policy.

    Exactly one stop criterion may be given: ``--ci-width W``
    (wilson-width), ``--rel-precision R`` (relative-precision), or
    ``--fail-rate-target T`` (fail-rate-target). ``--max-trials``
    defaults to ``--trials``: the adaptive budget is early stopping of
    the fixed budget you would otherwise burn, with ``--min-trials`` as
    the floor before the stop rule may fire. Only the *implicit* floor
    (32) is capped at the ceiling; an explicit ``--min-trials`` above
    ``--max-trials`` is rejected by the policy itself, exactly as the
    same budget object would be in a manifest.
    """
    criteria = [
        ("--ci-width", args.ci_width, WilsonWidthPolicy, "ci_width"),
        ("--rel-precision", args.rel_precision, RelativePrecisionPolicy, "rel_precision"),
        ("--fail-rate-target", args.fail_rate_target, FailRateTargetPolicy, "target"),
    ]
    given = [entry for entry in criteria if entry[1] is not None]
    if len(given) > 1:
        raise SystemExit(
            "pick one stop criterion: "
            + " / ".join(flag for flag, *_ in criteria)
        )
    if not given:
        for flag in ("--max-trials", "--min-trials"):
            if getattr(args, flag[2:].replace("-", "_")) is not None:
                raise SystemExit(
                    f"{flag} requires a stop criterion "
                    "(--ci-width / --rel-precision / --fail-rate-target)"
                )
        return None
    flag, value, policy_class, field = given[0]
    max_trials = args.max_trials if args.max_trials is not None else args.trials
    if args.min_trials is None:
        min_trials = min(DEFAULT_MIN_TRIALS, max_trials)
    else:
        min_trials = args.min_trials
    try:
        return policy_class(
            **{field: value, "min_trials": min_trials, "max_trials": max_trials}
        )
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None


def _cli_chunker(args, cost_model=None) -> "AdaptiveChunker | None":
    """The run's adaptive chunker, seeded from the ``--out`` timing
    sidecar when one exists — so a re-run starts from last night's
    per-trial costs instead of re-calibrating. An explicit
    ``--chunk-size`` pins sizing and disables the chunker entirely."""
    if args.chunk_size is not None:
        return None
    if cost_model is None and args.out:
        cost_model = load_cost_model(timings_path(args.out))
    return AdaptiveChunker(cost_model=cost_model)


def _cmd_sweep(args) -> int:
    if args.list:
        for name, desc, _tags, defaults, _batch in _scenario_rows():
            print(f"{name:<26} {desc}  [{defaults}]")
        return 0
    if not args.scenario:
        raise SystemExit("sweep requires --scenario NAME (or --list)")
    if args.trials < 0:
        raise SystemExit(f"--trials must be >= 0, got {args.trials}")
    budget = _budget_from_args(args)
    grid = _parse_grid(args.param)
    completed, existing_lines = _load_resume_state(args)
    # sweep_scenario validates the scenario and the whole grid eagerly —
    # a typo'd re-run fails here, before touching a previous --out file.
    try:
        total_points = len(expand_grid(grid))
        results = sweep_scenario(
            args.scenario,
            trials=None if budget else args.trials,
            grid=grid,
            base_seed=args.seed,
            workers=resolve_workers(args.workers),
            max_steps=args.max_steps,
            completed=completed,
            budget=budget,
            chunk_size=args.chunk_size,
            chunker=_cli_chunker(args),
        )
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None
    # record_timings: sweeps feed the same `.timings` sidecar campaigns
    # do, so the cost model (scheduling *and* chunk sizing) learns from
    # sweep workloads too.
    ran = _emit_rows(
        results, args, existing_lines, "sweep", record_timings=True
    ).ran
    if args.resume:
        print(
            f"  [resume: ran {ran} of {total_points} grid points; "
            f"{total_points - ran} already in {args.out}]",
            file=sys.stderr,
        )
    return 0


def _campaign_dry_run(args, points, scheduler, completed) -> int:
    """``campaign --dry-run``: the plan, not the trials.

    One stdout line per point in *admission* order — status
    (``done`` = its resume key already has a row in ``--out``,
    ``pending`` = it would run), scheduled cost, estimated seconds when
    the timing sidecar has observed the scenario, and the point's full
    identity — then a stderr summary matching the real run's footer,
    with an estimated total and ideal makespan when costs are observed.
    Nothing is executed and the ``--out`` store is never opened for
    writing.
    """
    done = 0
    pending_seconds = total_seconds = 0.0
    estimates = 0
    for point, cost in scheduler.plan(points):
        status = "done" if point.key() in completed else "pending"
        done += status == "done"
        if point.budget is None:
            budget = f"trials={point.trials}"
        else:
            budget = (
                f"budget={point.budget.policy}"
                f"[max_trials={point.budget.max_trials}]"
            )
        params = json.dumps(
            {k: point.params[k] for k in sorted(point.params)}, sort_keys=True
        )
        seconds = scheduler.estimate_seconds(point, cost_units=cost)
        est = ""
        if seconds is not None:
            estimates += 1
            total_seconds += seconds
            if status == "pending":
                pending_seconds += seconds
            est = f" est={seconds:.2f}s"
        print(
            f"{status:<8} cost={cost:<10} "
            f"{point.scenario} {params} {budget} seed={point.base_seed}{est}"
        )
    # 'done' statuses describe what --resume would skip; without it the
    # real run recomputes everything, so say so instead of printing a
    # plan the actual invocation would contradict.
    hint = (
        "; add --resume to skip them"
        if done and not args.resume
        else ""
    )
    print(
        f"  [campaign dry run: {len(points)} points, "
        f"schedule={scheduler.name}; {done} already in "
        f"{args.out or '<no --out>'}{hint}, {len(points) - done} to run]",
        file=sys.stderr,
    )
    if estimates:
        # Ideal makespan: observed trial-seconds spread perfectly over
        # the workers — a lower bound, not a promise.
        workers = resolve_workers(args.workers)
        run_seconds = pending_seconds if args.resume else total_seconds
        print(
            f"  [observed-cost estimate: ~{total_seconds:.1f}s of trial "
            f"work ({estimates} of {len(points)} points estimated); "
            f"makespan >= ~{run_seconds / workers:.1f}s at "
            f"{workers} worker(s)]",
            file=sys.stderr,
        )
    return 0


def _campaign_metrics(pool, chunker, total_points):
    """Registry + row observer behind ``campaign --metrics-port``.

    Returns ``(registry, observe)``: the registry scrapes the pool's
    chunk counters and the chunker's per-trial costs live, and
    ``observe`` wraps the campaign's result iterator so every emitted
    row feeds the trial/point counters and the throughput meter as it
    streams past — the same numbers the coordinator exports for
    distributed runs, for the single-host case.
    """
    from repro.metrics import MetricsRegistry, ThroughputMeter

    registry = MetricsRegistry()
    trials = registry.counter(
        "repro_trials_total", "Trials folded into emitted rows"
    )
    points_done = registry.counter(
        "repro_points_completed",
        "Campaign points emitted (timed-out partials included)",
    )
    timed_out = registry.counter(
        "repro_points_timed_out_total", "Timed-out partial rows emitted"
    )
    points_total = registry.gauge(
        "repro_points_total", "Points in the expanded manifest"
    )
    points_total.set(total_points)
    workers = registry.gauge(
        "repro_pool_workers", "Worker processes in the shared pool"
    )
    workers.set(pool.workers)
    chunks = registry.counter(
        "repro_pool_chunks_total",
        "Worker chunks by disposition (pool lifetime)",
    )
    meter = ThroughputMeter()
    rate = registry.gauge(
        "repro_trials_per_second",
        "Trials folded over the last sliding window",
    )
    per_trial = registry.gauge(
        "repro_per_trial_seconds",
        "Observed EWMA per-trial seconds by scenario",
    )

    def scrape():
        rate.set(meter.rate())
        for disposition, count in sorted(pool.counters().items()):
            chunks.set_total(count, disposition=disposition)
        if chunker is not None:
            for scenario in chunker.scenarios():
                cost = chunker.per_trial_seconds(scenario)
                if cost is not None:
                    per_trial.set(cost, scenario=scenario)

    registry.collect(scrape)

    def observe(results):
        for result in results:
            points_done.inc()
            if result.timed_out:
                timed_out.inc()
            trials.inc(result.trials)
            meter.observe(result.trials)
            yield result

    return registry, observe


def _cmd_campaign(args) -> int:
    # Validation order mirrors blame order: the schedule name first
    # (listing the known schedulers — argparse choices already catch the
    # CLI spelling, this guards programmatic calls too), then manifest
    # expansion — unknown scenarios/tags/grid keys/budgets all fail
    # before any trial runs and before a previous --out file is touched.
    try:
        # One sidecar parse feeds both consumers: longest-first ordering
        # / --dry-run estimates, and the adaptive chunker's starting
        # per-trial costs. A pinned --chunk-size manifest-order run
        # still skips the parse — nothing would ever look at it.
        cost_model = None
        if args.out and (
            args.schedule == "longest-first"
            or args.dry_run
            or args.chunk_size is None
        ):
            cost_model = load_cost_model(timings_path(args.out))
        scheduler = PointScheduler(args.schedule, cost_model=cost_model)
        points = load_manifest(args.manifest)
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None
    for flag, value in (
        ("--point-timeout", args.point_timeout),
        ("--max-wall-clock", args.max_wall_clock),
    ):
        # `not >` so NaN is rejected too (NaN <= 0 is False, and a NaN
        # deadline would silently never fire).
        if value is not None and not value > 0:
            raise SystemExit(f"{flag} must be a positive number of seconds")
    if args.dry_run:
        # The dry run answers "what is left?" whenever --out exists,
        # without requiring --resume (nothing is written either way) —
        # and a missing or unreadable --out means every point is
        # pending, never a crash.
        if args.resume and not args.out:
            raise SystemExit("--resume requires --out (the file to resume into)")
        completed = set()
        if args.out and is_store_path(args.out):
            completed = _store_completed_keys(args.out, strict=False)
        elif args.out:
            lines = _read_rows_file(args.out, strict=False)
            if args.resume:
                completed = _completed_keys_reporting(lines, args.out)
                for row in _salvageable_rows(
                    f"{args.out}.tmp", completed, strict=False
                ):
                    completed.add(row_resume_key(row))
            else:
                completed = load_completed_keys(lines)
        return _campaign_dry_run(args, points, scheduler, completed)
    completed, existing_lines = _load_resume_state(args)
    # Timed-out rows for points this run retries are stale retry
    # markers: the retry writes a fresh row (timed-out or complete) that
    # replaces the old partial — which is written back untouched if the
    # retry never got to run. SQLite targets skip the line pass: the
    # store applies the same replace/supersede semantics transactionally
    # on every append.
    replaces = {}
    if not is_store_path(args.out):
        existing_lines, replaces = _hold_back_stale_timed_out(
            existing_lines, points, completed
        )
    if args.coordinate:
        if args.metrics_port is not None:
            raise SystemExit(
                "--metrics-port is redundant with --coordinate: the "
                "coordinator already serves /metrics on --listen"
            )
        return _coordinate_campaign(
            args, points, scheduler, completed, existing_lines, replaces
        )
    # --metrics-port: the CLI owns the pool (run_campaign never closes
    # an injected one) so the /metrics scrape reads live chunk counters
    # while trials run; without the flag, run_campaign manages its own
    # pool exactly as before.
    chunker = _cli_chunker(args, cost_model=cost_model)
    pool = None
    observe = None
    metrics_server = None
    metrics_thread = None
    if args.metrics_port is not None:
        from repro.httpd import serve_metrics

        pool = WorkerPool(resolve_workers(args.workers))
        registry, observe = _campaign_metrics(pool, chunker, len(points))
        try:
            metrics_server, metrics_thread = serve_metrics(
                registry, port=args.metrics_port
            )
        except OSError as exc:
            pool.terminate()
            raise SystemExit(
                f"cannot serve /metrics on port {args.metrics_port}: {exc}"
            ) from None
        bound_host, bound_port = metrics_server.server_address[:2]
        print(
            f"  [campaign: serving http://{bound_host}:{bound_port}"
            "/metrics]",
            file=sys.stderr,
        )
    try:
        try:
            results = run_campaign(
                points,
                workers=resolve_workers(args.workers),
                pool=pool,
                completed=completed,
                schedule=scheduler,
                point_timeout=args.point_timeout,
                max_wall_clock=args.max_wall_clock,
                chunk_size=args.chunk_size,
                chunker=chunker,
            )
            if observe is not None:
                results = observe(results)
            outcome = _emit_rows(
                results, args, existing_lines, "campaign",
                record_timings=True, replaces=replaces,
            )
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from None
    except BaseException:
        # Mirror run_campaign's own-pool semantics for the CLI-owned
        # pool: terminate on any early exit, close on success.
        if pool is not None:
            pool.terminate()
        raise
    else:
        if pool is not None:
            pool.close()
    finally:
        if metrics_server is not None:
            metrics_server.shutdown()
            metrics_server.server_close()
            metrics_thread.join(timeout=5)
    # Count skips from the completed set, not len(points) - ran: under a
    # deadline, points that never started are pending, not "already in".
    skipped = sum(point.key() in completed for point in points)
    notes = ""
    if args.resume:
        notes += f"; {skipped} already in {args.out}"
    if outcome.timed_out:
        notes += (
            f"; {outcome.timed_out} timed out (a --resume run retries them)"
        )
    print(
        f"  [campaign: ran {outcome.ran} of {len(points)} points{notes}]",
        file=sys.stderr,
    )
    if outcome.deadline is not None:
        print(
            f"  [campaign: wall-clock deadline reached; "
            f"{outcome.deadline.pending} point(s) never started; "
            f"finished rows checkpointed"
            + (
                f" to {outcome.checkpoint_path}"
                if outcome.checkpoint_path
                else ""
            )
            + "; re-run with --resume to continue]",
            file=sys.stderr,
        )
        return EXIT_DEADLINE
    return 0


def _parse_listen(text: str):
    """``HOST:PORT`` -> ``(host, port)`` (``:PORT`` binds all
    interfaces' loopback default; port 0 asks for an ephemeral one)."""
    host, sep, port = text.rpartition(":")
    if not sep:
        raise SystemExit(f"--listen/--join expects HOST:PORT, got {text!r}")
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise SystemExit(f"bad port in {text!r}") from None


def _coordinate_campaign(
    args, points, scheduler, completed, existing_lines, replaces
) -> int:
    """The ``--coordinate`` arm of ``campaign``: serve leases to runner
    nodes instead of running trials locally, writing the identical row
    stream to the identical ``--out`` targets."""
    from repro.experiments.coordinator import (
        DEFAULT_LEASE_TRIALS,
        DEFAULT_LEASE_TTL,
        CampaignCoordinator,
        serve_coordinator,
    )

    if args.max_wall_clock is not None:
        raise SystemExit(
            "--max-wall-clock is not supported with --coordinate yet; "
            "bound node loss with --lease-ttl / --point-timeout instead"
        )
    # Lease expiry IS the point-timeout machinery at distributed
    # granularity: a range unreported within the TTL is presumed lost
    # with its node and re-leased, exactly as a timed-out point's
    # trials are retried.
    lease_ttl = args.lease_ttl
    if lease_ttl is None:
        lease_ttl = (
            args.point_timeout
            if args.point_timeout is not None
            else DEFAULT_LEASE_TTL
        )
    host, port = _parse_listen(args.listen)
    try:
        coordinator = CampaignCoordinator(
            points,
            completed=completed,
            schedule=scheduler,
            lease_trials=(
                args.lease_trials
                if args.lease_trials is not None
                else DEFAULT_LEASE_TRIALS
            ),
            lease_ttl=lease_ttl,
        )
        server, thread = serve_coordinator(coordinator, host, port)
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None
    except OSError as exc:
        raise SystemExit(f"cannot listen on {args.listen!r}: {exc}") from None
    try:
        outcome = _emit_rows(
            coordinator.results(), args, existing_lines, "campaign",
            record_timings=True, replaces=replaces,
        )
        # Linger until every live node has polled "done" (and so exits
        # 0) before tearing the server down; dead nodes aren't waited on.
        coordinator.await_nodes_done()
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
    skipped = sum(point.key() in completed for point in points)
    notes = f"; {skipped} already in {args.out}" if args.resume else ""
    print(
        f"  [campaign: ran {outcome.ran} of {len(points)} points "
        f"across worker nodes{notes}]",
        file=sys.stderr,
    )
    return 0


def _cmd_node(args) -> int:
    """``node``: join a coordinator and run leased trial ranges."""
    # Imported lazily, like serve: only this subcommand pays for it.
    from repro.experiments.node import run_node

    try:
        return run_node(
            args.join,
            workers=resolve_workers(args.workers),
            poll=args.poll,
            name=args.name,
            retries=args.retries,
            verbose=args.verbose,
        )
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None
    except KeyboardInterrupt:
        return 0


def _cmd_db(args) -> int:
    """``db import``: JSONL rows -> SQLite store; ``db export``: store
    back to JSONL; ``db stats``: counts."""
    if args.db_command == "export":
        if not os.path.exists(args.db):
            raise SystemExit(f"cannot read store: {args.db!r} does not exist")
        out = args.out or os.path.splitext(args.db)[0] + ".jsonl"
        exported = 0
        try:
            # repro-lint: allow[R301] db export IS the blessed store->JSONL path: lines come straight from the store's resume-keyed rows
            with ResultStore(args.db, read_only=True) as store, open(
                out, "w"
            ) as f:
                for line in store.export_lines():
                    f.write(line + "\n")
                    exported += 1
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from None
        except OSError as exc:
            raise SystemExit(f"cannot write {out!r}: {exc}") from None
        print(f"exported {args.db} to {out}: {exported} line(s)")
        return 0
    if args.db_command == "import":
        if not os.path.exists(args.rows):
            raise SystemExit(f"cannot read rows file: {args.rows!r} does not exist")
        db = args.db or os.path.splitext(args.rows)[0] + ".db"
        lines = _read_rows_file(args.rows)
        try:
            with ResultStore(db) as store:
                report = store.import_lines(lines)
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from None
        print(
            f"imported {args.rows} into {db}: {report['stored']} stored, "
            f"{report['duplicate']} duplicate, {report['marker']} "
            f"timed-out marker(s), {report['superseded']} superseded, "
            f"{report['skipped']} skipped"
        )
        return 0
    try:
        with ResultStore(args.db, read_only=True) as store:
            stats = store.stats()
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None
    print(
        f"{args.db}: {stats['completed']} completed row(s), "
        f"{stats['timed_out']} timed-out marker(s), "
        f"{stats['scenarios']} scenario(s)"
    )
    return 0


def _cmd_serve(args) -> int:
    """``serve``: the estimate service over a results database."""
    # Imported lazily: every other subcommand works without ever paying
    # for the HTTP layer.
    from repro.serve import run_server

    try:
        return run_server(
            args.db,
            host=args.host,
            port=args.port,
            workers=resolve_workers(args.workers),
            read_only=args.read_only,
            min_trials=args.min_trials,
            max_trials=args.max_trials,
            base_seed=args.seed,
            verbose=args.verbose,
        )
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None


#: Column layout of the ``scenarios`` listing (shared by --markdown).
_SCENARIO_COLUMNS = ("Scenario", "Description", "Tags", "Defaults", "Batch")


def _scenario_rows():
    rows = []
    for spec in all_scenarios():
        defaults = ", ".join(
            f"{k}={v}" for k, v in sorted(spec.defaults.items())
        )
        batch = "yes" if spec.run_batch is not None else ""
        rows.append(
            (spec.name, spec.description, ", ".join(spec.tags), defaults, batch)
        )
    return rows


def _cmd_scenarios(args) -> int:
    """List every registered scenario (the README table's source)."""
    rows = _scenario_rows()
    if args.tag:
        rows = [r for r in rows if args.tag in r[2].split(", ")]
    if args.markdown:
        print("| " + " | ".join(_SCENARIO_COLUMNS) + " |")
        print("|" + "---|" * len(_SCENARIO_COLUMNS))
        for name, desc, tags, defaults, batch in rows:
            print(f"| `{name}` | {desc} | {tags} | `{defaults}` | {batch} |")
        return 0
    widths = [
        max(len(str(row[i])) for row in rows + [_SCENARIO_COLUMNS])
        for i in range(len(_SCENARIO_COLUMNS))
    ]
    for row in rows:
        print(
            "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths)).rstrip()
        )
    return 0


def _cmd_certificate(args) -> int:
    n = args.n
    if args.graph == "ring":
        nodes = list(range(1, n + 1))
        edges = [(i, i % n + 1) for i in nodes]
    elif args.graph == "complete":
        nodes = list(range(1, n + 1))
        edges = [(u, v) for u in nodes for v in nodes if u < v]
    else:
        raise SystemExit(f"unknown graph {args.graph!r}")
    cert = impossibility_certificate(nodes, edges)
    print(cert["statement"])
    print(f"parts    : {cert['parts']}")
    return 0


def _cmd_frontier(args) -> int:
    from repro.analysis.frontier import forcing_frontier

    for point in forcing_frontier(
        args.sizes, seeds=1, workers=resolve_workers(args.workers)
    ):
        print(
            f"n={point.n:<5} smallest forcing k={point.k_min:<3} "
            f"({point.family}); proven gap "
            f"[n^(1/4)={point.lower_bound:.1f}, "
            f"2n^(1/3)={point.upper_bound:.1f}], "
            f"conjecture n^(1/3)={point.conjecture:.1f}"
        )
    return 0


def _cmd_fuzz(args) -> int:
    from repro.testing.fuzz import deviation_search

    report = deviation_search(
        args.n,
        args.k,
        samples=args.samples,
        master_seed=args.seed,
        workers=resolve_workers(args.workers),
    )
    print(f"sampled deviations : {report.samples} (n={args.n}, k={args.k})")
    print(f"punished (FAIL)    : {report.punished} "
          f"({report.punishment_rate:.0%})")
    print(f"max outcome rate   : {report.max_outcome_rate:.3f} "
          f"(attack-level forcing would be ~1.0)")
    return 0


def _cmd_lint(args) -> int:
    """``lint``: run the project-invariant static analyzer.

    Exit status is the gate CI keys on: 0 means no findings, non-zero
    otherwise (configuration mistakes — unknown rule selectors, missing
    paths — report on stderr with no findings listing).
    """
    # Imported lazily, like serve/node: only this subcommand pays for it.
    from repro.lint import lint_paths, render_json, render_text

    try:
        findings = lint_paths(
            args.paths, select=args.select, ignore=args.ignore
        )
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None
    if args.format == "json":
        sys.stdout.write(render_json(findings))
    else:
        sys.stdout.write(render_text(findings))
        print(
            f"  [lint: {len(findings)} finding(s)]",
            file=sys.stderr,
        )
    return 1 if findings else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fair leader election for rational agents — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="run a protocol honestly")
    p.add_argument("--protocol", choices=sorted(PROTOCOLS), required=True)
    p.add_argument("--n", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--max-steps", type=int, default=None,
        help="delivery budget before declaring non-termination",
    )
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("attack", help="run an adversarial deviation")
    p.add_argument(
        "--name",
        choices=sorted(ATTACK_SCENARIOS),
        required=True,
    )
    p.add_argument("--n", type=int, default=64)
    p.add_argument("--k", type=int, default=None)
    p.add_argument("--target", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--max-steps", type=int, default=None,
        help="delivery budget before declaring non-termination",
    )
    p.set_defaults(func=_cmd_attack)

    p = sub.add_parser("bias", help="estimate a protocol's bias")
    p.add_argument("--protocol", choices=sorted(PROTOCOLS), required=True)
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--trials", type=int, default=400)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers", type=_workers_arg, default=1, metavar="N|auto",
        help="worker processes (auto = derive from the machine)",
    )
    p.add_argument(
        "--max-steps", type=int, default=None,
        help="per-trial delivery budget",
    )
    p.set_defaults(func=_cmd_bias)

    p = sub.add_parser(
        "sweep",
        help="run a registered scenario grid; one JSON row per grid point",
    )
    p.add_argument("--scenario", default=None, help="registry name, e.g. attack/cubic")
    p.add_argument("--list", action="store_true", help="list registered scenarios")
    p.add_argument("--trials", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers", type=_workers_arg, default=1, metavar="N|auto",
        help="worker processes (auto = derive from the machine)",
    )
    p.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=V[,V...]",
        help="pin a parameter or sweep comma-separated values (repeatable)",
    )
    p.add_argument(
        "--max-steps", type=int, default=None,
        help="per-trial delivery budget",
    )
    p.add_argument(
        "--ci-width", type=float, default=None, metavar="W",
        help="adaptive budget (wilson-width policy): stop a grid point "
             "once its Wilson interval is narrower than W "
             "(see also --min-trials/--max-trials)",
    )
    p.add_argument(
        "--rel-precision", type=float, default=None, metavar="R",
        help="adaptive budget (relative-precision policy): stop once the "
             "Wilson half-width is at most R times the estimate",
    )
    p.add_argument(
        "--fail-rate-target", type=float, default=None, metavar="T",
        help="adaptive budget (fail-rate-target policy): stop once the "
             "Wilson interval lies entirely above or below T",
    )
    p.add_argument(
        "--min-trials", type=int, default=None,
        help="adaptive budget: never stop before this many trials "
             f"(default {DEFAULT_MIN_TRIALS}, capped at the ceiling)",
    )
    p.add_argument(
        "--max-trials", type=int, default=None,
        help="adaptive budget: hard trial ceiling (default: --trials)",
    )
    p.add_argument(
        "--out", default=None,
        help="also write JSON rows to this file (a .db/.sqlite suffix "
             "targets a SQLite results store instead of JSONL)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="skip grid points whose rows are already in --out; append the rest",
    )
    p.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="pin trials per worker chunk (default: cost-adaptive "
             "sizing from observed per-trial seconds; never affects "
             "results, only scheduling)",
    )
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "campaign",
        help="run a JSON manifest of scenario grids against one resume store",
    )
    p.add_argument(
        "manifest",
        help="JSON file of (scenario|tag, grid, trials, base_seed) entries",
    )
    p.add_argument(
        "--workers", type=_workers_arg, default=1, metavar="N|auto",
        help="worker processes shared by all grid points "
             "(auto = derive from the machine)",
    )
    p.add_argument(
        "--out", default=None,
        help="also write JSON rows to this file (a .db/.sqlite suffix "
             "targets a SQLite results store instead of JSONL)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="skip points whose rows are already in --out; append the rest",
    )
    p.add_argument(
        "--schedule",
        default="manifest-order",
        choices=schedule_names(),
        help="admission order of the expanded points (longest-first "
             "shaves stragglers on wide grids, using observed per-trial "
             "seconds from the --out timing sidecar when available; "
             "rows are identical either way)",
    )
    p.add_argument(
        "--point-timeout", type=float, default=None, metavar="SECONDS",
        help="abandon any grid point that exceeds this wall-clock budget "
             "(at its next chunk boundary): it is recorded as a "
             "timed_out row that --resume retries, while the remaining "
             "points keep running",
    )
    p.add_argument(
        "--max-wall-clock", type=float, default=None, metavar="SECONDS",
        help="global campaign deadline: on expiry the campaign "
             "checkpoints every finished row to --out and exits with "
             f"code {EXIT_DEADLINE} (resume with --resume)",
    )
    p.add_argument(
        "--dry-run",
        action="store_true",
        help="print the expanded point list with scheduled costs, "
             "observed-cost estimates, and resume status instead of "
             "running anything",
    )
    p.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="pin trials per worker chunk (default: cost-adaptive "
             "sizing from observed per-trial seconds; never affects "
             "results, only scheduling)",
    )
    p.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve Prometheus-text /metrics (and /healthz) on "
             "127.0.0.1:PORT for the duration of the run — live trial "
             "throughput, point progress, and pool chunk counters "
             "(port 0 binds an ephemeral port; not with --coordinate, "
             "whose --listen endpoint already serves /metrics)",
    )
    p.add_argument(
        "--coordinate", action="store_true",
        help="run no trials locally: serve (point, trial-range) leases "
             "over HTTP to 'repro node' workers and fold their reports "
             "into --out (rows are byte-identical to a local run)",
    )
    p.add_argument(
        "--listen", default="127.0.0.1:8765", metavar="HOST:PORT",
        help="coordinator listen address (with --coordinate; "
             "port 0 binds an ephemeral port; default %(default)s)",
    )
    p.add_argument(
        "--lease-trials", type=int, default=None, metavar="N",
        help="trials per lease handed to a node (with --coordinate; "
             "default 1024; never affects results, only scheduling)",
    )
    p.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS",
        help="re-lease a range not reported within this window — the "
             "point-timeout retry machinery applied to lost nodes "
             "(with --coordinate; default: --point-timeout, else 30)",
    )
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser(
        "node",
        help="join a 'campaign --coordinate' coordinator and run leased "
             "trial ranges on a local worker pool",
    )
    p.add_argument(
        "--join", required=True, metavar="HOST:PORT",
        help="coordinator address (the campaign --listen value)",
    )
    p.add_argument(
        "--workers", type=_workers_arg, default=1, metavar="N|auto",
        help="worker processes for leased ranges "
             "(auto = derive from the machine)",
    )
    p.add_argument(
        "--poll", type=float, default=0.2, metavar="SECONDS",
        help="sleep between empty lease polls (default %(default)s)",
    )
    p.add_argument(
        "--name", default=None,
        help="node name reported to the coordinator "
             "(default: short hostname)",
    )
    p.add_argument(
        "--retries", type=int, default=30,
        help="consecutive connection failures before giving up "
             "(default %(default)s)",
    )
    p.add_argument(
        "--verbose", action="store_true",
        help="log leases and reports to stderr",
    )
    p.set_defaults(func=_cmd_node)

    p = sub.add_parser(
        "db", help="manage a SQLite results store (import / export / stats)"
    )
    db_sub = p.add_subparsers(dest="db_command", required=True)
    q = db_sub.add_parser(
        "import",
        help="import a JSONL --out file into a results database "
             "(losslessly; torn lines are skipped, timed-out rows "
             "become retry markers)",
    )
    q.add_argument("rows", help="JSONL rows file (a sweep/campaign --out)")
    q.add_argument(
        "--db", default=None,
        help="database path (default: the rows file with a .db suffix)",
    )
    q.set_defaults(func=_cmd_db)
    q = db_sub.add_parser(
        "export",
        help="export a results database back to a JSONL rows file "
             "(lossless inverse of import; the file is "
             "resume-loader-compatible, so export -> import merges "
             "stores)",
    )
    q.add_argument("db", help="database path")
    q.add_argument(
        "--out", default=None,
        help="JSONL output path (default: the database with a "
             ".jsonl suffix)",
    )
    q.set_defaults(func=_cmd_db)
    q = db_sub.add_parser("stats", help="row counts of a results database")
    q.add_argument("db", help="database path")
    q.set_defaults(func=_cmd_db)

    p = sub.add_parser(
        "serve",
        help="serve estimate queries over HTTP from a results database "
             "(stored rows when precise enough, adaptive points on miss)",
    )
    p.add_argument("--db", required=True, help="SQLite results database")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=8080,
        help="listen port (0 binds an ephemeral port)",
    )
    p.add_argument(
        "--workers", type=_workers_arg, default=1, metavar="N|auto",
        help="worker processes for cold-miss computations "
             "(auto = derive from the machine)",
    )
    p.add_argument(
        "--read-only", action="store_true",
        help="answer only from stored rows; a query nothing stored "
             "satisfies is refused (HTTP 409) instead of computed",
    )
    p.add_argument(
        "--min-trials", type=int, default=DEFAULT_MIN_TRIALS,
        help="adaptive floor for cold-miss points "
             f"(default {DEFAULT_MIN_TRIALS})",
    )
    p.add_argument(
        "--max-trials", type=int, default=100_000,
        help="adaptive ceiling for cold-miss points (default 100000)",
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="base seed for cold-miss points",
    )
    p.add_argument(
        "--verbose", action="store_true",
        help="log each HTTP request to stderr",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "scenarios",
        help="list every registered scenario (source of the README table)",
    )
    p.add_argument("--tag", default=None, help="only scenarios with this tag")
    p.add_argument(
        "--markdown", action="store_true", help="emit a Markdown table"
    )
    p.set_defaults(func=_cmd_scenarios)

    p = sub.add_parser(
        "certificate", help="Theorem 7.2 impossibility certificate"
    )
    p.add_argument("--graph", choices=["ring", "complete"], default="ring")
    p.add_argument("--n", type=int, default=12)
    p.set_defaults(func=_cmd_certificate)

    p = sub.add_parser(
        "frontier",
        help="Conjecture 4.7: smallest forcing coalition per ring size",
    )
    p.add_argument("--sizes", type=int, nargs="+", default=[64, 144, 256])
    p.add_argument(
        "--workers", type=_workers_arg, default=1, metavar="N|auto",
        help="worker processes (auto = derive from the machine)",
    )
    p.set_defaults(func=_cmd_frontier)

    p = sub.add_parser(
        "fuzz", help="random-deviation search against A-LEADuni (Thm 5.1)"
    )
    p.add_argument("--n", type=int, default=25)
    p.add_argument("--k", type=int, default=3)
    p.add_argument("--samples", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers", type=_workers_arg, default=1, metavar="N|auto",
        help="worker processes (auto = derive from the machine)",
    )
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser(
        "lint",
        help="static invariant checks: determinism (R1), lock "
             "discipline (R2), row integrity (R3); exit 1 on findings",
    )
    p.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    p.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="text: path:line:col: RULE message per finding; "
             "json: a stable {\"findings\": [...]} document",
    )
    p.add_argument(
        "--select", default=None, metavar="RULES",
        help="only report these comma-separated rule ids/prefixes "
             "(R2 selects every R2xx rule)",
    )
    p.add_argument(
        "--ignore", default=None, metavar="RULES",
        help="drop these comma-separated rule ids/prefixes from the "
             "report",
    )
    p.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
