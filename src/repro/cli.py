"""Command-line interface: run protocols, attacks, and measurements.

Examples::

    python -m repro run --protocol phase-async --n 64 --seed 3
    python -m repro attack --name cubic --n 111 --k 6 --target 42
    python -m repro bias --protocol alead-uni --n 8 --trials 500
    python -m repro certificate --graph ring --n 12

Everything printed is derived from the same public API the examples and
benches use; the CLI exists so downstream users can poke the system
without writing a script.
"""

import argparse
import math
import sys
from typing import Optional

from repro.analysis.bias import empirical_bias
from repro.analysis.distribution import (
    chi_square_uniformity,
    estimate_distribution,
)
from repro.attacks import (
    RingPlacement,
    basic_cheat_protocol,
    cubic_attack_protocol,
    equal_spacing_attack_protocol,
    partial_sum_attack_protocol,
    phase_rushing_attack_protocol,
    shamir_pooling_attack_protocol,
)
from repro.protocols import (
    alead_uni_protocol,
    async_complete_protocol,
    basic_lead_protocol,
    default_threshold,
    phase_async_protocol,
)
from repro.sim.execution import run_protocol
from repro.sim.topology import complete_graph, unidirectional_ring
from repro.trees import impossibility_certificate

PROTOCOLS = {
    "basic-lead": (basic_lead_protocol, "ring"),
    "alead-uni": (alead_uni_protocol, "ring"),
    "phase-async": (phase_async_protocol, "ring"),
    "async-complete": (async_complete_protocol, "complete"),
}


def _topology(kind: str, n: int):
    return unidirectional_ring(n) if kind == "ring" else complete_graph(n)


def _cmd_run(args) -> int:
    maker, kind = PROTOCOLS[args.protocol]
    topo = _topology(kind, args.n)
    result = run_protocol(topo, maker(topo), seed=args.seed)
    print(f"protocol : {args.protocol} (n={args.n}, seed={args.seed})")
    print(f"outcome  : {result.outcome}")
    print(f"steps    : {result.steps}")
    if result.failed:
        print(f"reason   : {result.fail_reason}")
    return 0 if not result.failed else 1


def _build_attack(args):
    n, k, target = args.n, args.k, args.target
    if args.name == "basic-cheat":
        topo = unidirectional_ring(n)
        return topo, basic_cheat_protocol(topo, cheater=2, target=target)
    if args.name == "rushing":
        topo = unidirectional_ring(n)
        kk = k if k else math.isqrt(n)
        pl = RingPlacement.equal_spacing(n, kk)
        return topo, equal_spacing_attack_protocol(topo, pl, target)
    if args.name == "cubic":
        topo = unidirectional_ring(n)
        kk = k if k else max(3, round(2 * n ** (1 / 3)))
        pl = RingPlacement.cubic(n, kk)
        return topo, cubic_attack_protocol(topo, pl, target)
    if args.name == "partial-sum":
        topo = unidirectional_ring(n)
        return topo, partial_sum_attack_protocol(topo, k if k else 4, target)
    if args.name == "phase-rushing":
        topo = unidirectional_ring(n)
        kk = k if k else math.isqrt(n) + 3
        return topo, phase_rushing_attack_protocol(topo, kk, target)
    if args.name == "shamir-pool":
        topo = complete_graph(n)
        kk = k if k else default_threshold(n)
        coalition = list(range(2, 2 + kk))
        return topo, shamir_pooling_attack_protocol(topo, coalition, target)
    raise SystemExit(f"unknown attack {args.name!r}")


def _cmd_attack(args) -> int:
    topo, protocol = _build_attack(args)
    result = run_protocol(topo, protocol, seed=args.seed)
    forced = result.outcome == args.target
    print(f"attack   : {args.name} (n={args.n}, target={args.target})")
    print(f"outcome  : {result.outcome} ({'FORCED' if forced else 'not forced'})")
    if result.failed:
        print(f"reason   : {result.fail_reason}")
    return 0 if forced else 1


def _cmd_bias(args) -> int:
    maker, kind = PROTOCOLS[args.protocol]
    topo = _topology(kind, args.n)
    dist = estimate_distribution(topo, maker, trials=args.trials, base_seed=args.seed)
    report = empirical_bias(topo, maker, args.trials, distribution=dist)
    print(f"protocol : {args.protocol} (n={args.n}, {args.trials} trials)")
    print(f"fail rate: {report.fail_rate:.4f}")
    print(f"max Pr   : {report.max_probability:.4f} (1/n = {1/args.n:.4f})")
    print(f"epsilon  : {report.epsilon:.4f}")
    print(f"chi2 p   : {chi_square_uniformity(dist):.4f}")
    return 0


def _cmd_certificate(args) -> int:
    n = args.n
    if args.graph == "ring":
        nodes = list(range(1, n + 1))
        edges = [(i, i % n + 1) for i in nodes]
    elif args.graph == "complete":
        nodes = list(range(1, n + 1))
        edges = [(u, v) for u in nodes for v in nodes if u < v]
    else:
        raise SystemExit(f"unknown graph {args.graph!r}")
    cert = impossibility_certificate(nodes, edges)
    print(cert["statement"])
    print(f"parts    : {cert['parts']}")
    return 0


def _cmd_frontier(args) -> int:
    from repro.analysis.frontier import forcing_frontier

    for point in forcing_frontier(args.sizes, seeds=1):
        print(
            f"n={point.n:<5} smallest forcing k={point.k_min:<3} "
            f"({point.family}); proven gap "
            f"[n^(1/4)={point.lower_bound:.1f}, "
            f"2n^(1/3)={point.upper_bound:.1f}], "
            f"conjecture n^(1/3)={point.conjecture:.1f}"
        )
    return 0


def _cmd_fuzz(args) -> int:
    from repro.testing.fuzz import deviation_search

    report = deviation_search(
        args.n, args.k, samples=args.samples, master_seed=args.seed
    )
    print(f"sampled deviations : {report.samples} (n={args.n}, k={args.k})")
    print(f"punished (FAIL)    : {report.punished} "
          f"({report.punishment_rate:.0%})")
    print(f"max outcome rate   : {report.max_outcome_rate:.3f} "
          f"(attack-level forcing would be ~1.0)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fair leader election for rational agents — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="run a protocol honestly")
    p.add_argument("--protocol", choices=sorted(PROTOCOLS), required=True)
    p.add_argument("--n", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("attack", help="run an adversarial deviation")
    p.add_argument(
        "--name",
        choices=[
            "basic-cheat", "rushing", "cubic", "partial-sum",
            "phase-rushing", "shamir-pool",
        ],
        required=True,
    )
    p.add_argument("--n", type=int, default=64)
    p.add_argument("--k", type=int, default=None)
    p.add_argument("--target", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_attack)

    p = sub.add_parser("bias", help="estimate a protocol's bias")
    p.add_argument("--protocol", choices=sorted(PROTOCOLS), required=True)
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--trials", type=int, default=400)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_bias)

    p = sub.add_parser(
        "certificate", help="Theorem 7.2 impossibility certificate"
    )
    p.add_argument("--graph", choices=["ring", "complete"], default="ring")
    p.add_argument("--n", type=int, default=12)
    p.set_defaults(func=_cmd_certificate)

    p = sub.add_parser(
        "frontier",
        help="Conjecture 4.7: smallest forcing coalition per ring size",
    )
    p.add_argument("--sizes", type=int, nargs="+", default=[64, 144, 256])
    p.set_defaults(func=_cmd_frontier)

    p = sub.add_parser(
        "fuzz", help="random-deviation search against A-LEADuni (Thm 5.1)"
    )
    p.add_argument("--n", type=int, default=25)
    p.add_argument("--k", type=int, default=3)
    p.add_argument("--samples", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_fuzz)
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
