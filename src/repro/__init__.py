"""repro — reproduction of "Fair Leader Election for Rational Agents in
Asynchronous Rings and Networks" (Yifrach & Mansour, PODC 2018).

Public API highlights:

- :func:`repro.sim.run_protocol` + topologies — the asynchronous
  message-passing substrate.
- :mod:`repro.protocols` — Basic-LEAD, A-LEADuni, PhaseAsyncLead.
- :mod:`repro.attacks` — every adversarial deviation the paper analyses.
- :mod:`repro.experiments` — the Monte-Carlo experiment engine: the
  scenario registry, the parallel deterministic trial runner, and
  parameter-grid sweeps (``python -m repro sweep``).
- :mod:`repro.analysis` — outcome distributions, bias estimation,
  synchronization-gap traces.
- :mod:`repro.cointoss` — FLE ⇔ fair coin toss reductions (Section 8).
- :mod:`repro.trees` — k-simulated tree impossibility machinery
  (Section 7 / Appendix F).
"""

from repro.sim import (
    FAIL,
    ABORT,
    run_protocol,
    unidirectional_ring,
    ExecutionResult,
)
from repro.protocols import (
    basic_lead_protocol,
    alead_uni_protocol,
    phase_async_protocol,
    PhaseAsyncParams,
    RandomFunction,
)
from repro.experiments import (
    ExperimentRunner,
    ScenarioSpec,
    get_scenario,
    register_scenario,
    run_scenario,
    scenario_names,
)

__version__ = "1.1.0"

__all__ = [
    "FAIL",
    "ABORT",
    "run_protocol",
    "unidirectional_ring",
    "ExecutionResult",
    "basic_lead_protocol",
    "alead_uni_protocol",
    "phase_async_protocol",
    "PhaseAsyncParams",
    "RandomFunction",
    "ExperimentRunner",
    "ScenarioSpec",
    "get_scenario",
    "register_scenario",
    "run_scenario",
    "scenario_names",
    "__version__",
]
