"""Definition 7.1: k-simulated trees, verified.

An undirected graph ``G`` is a *k-simulated tree* when there is a tree
``T`` and a homomorphism ``f : V(G) → V(T)`` with (1) every fiber
``f⁻¹(v)`` of size at most ``k`` and (2) every fiber connected in ``G``.
Equivalently: a partition of ``G`` into connected parts of size ≤ k whose
quotient graph is a tree.

Graphs here are plain undirected edge sets over hashable nodes; helpers
accept :class:`~repro.sim.topology.Topology` too (direction erased).
"""

from typing import Dict, Hashable, Iterable, List, Set, Tuple

from repro.sim.topology import Topology
from repro.util.errors import ConfigurationError

Edge = Tuple[Hashable, Hashable]


def _normalize(nodes: Iterable[Hashable], edges: Iterable[Edge]):
    node_list = list(nodes)
    node_set = set(node_list)
    edge_set: Set[frozenset] = set()
    for u, v in edges:
        if u not in node_set or v not in node_set:
            raise ConfigurationError(f"edge ({u}, {v}) references unknown node")
        if u != v:
            edge_set.add(frozenset((u, v)))
    return node_list, edge_set


def undirected_view(topology: Topology):
    """Node list + undirected edge set of a :class:`Topology`."""
    return _normalize(
        topology.nodes, [(u, v) for u, v in topology.edges]
    )


def _adjacency(nodes, edge_set) -> Dict[Hashable, List[Hashable]]:
    adj: Dict[Hashable, List[Hashable]] = {v: [] for v in nodes}
    for e in edge_set:
        u, v = tuple(e)
        adj[u].append(v)
        adj[v].append(u)
    return adj


def _is_connected_subset(subset: Set[Hashable], adj) -> bool:
    subset = set(subset)
    if not subset:
        return False
    start = next(iter(subset))
    seen = {start}
    stack = [start]
    while stack:
        u = stack.pop()
        for w in adj[u]:
            if w in subset and w not in seen:
                seen.add(w)
                stack.append(w)
    return seen == subset


def is_tree(nodes: Iterable[Hashable], edges: Iterable[Edge]) -> bool:
    """True iff the undirected graph is connected and acyclic."""
    node_list, edge_set = _normalize(nodes, edges)
    if not node_list:
        return False
    if len(edge_set) != len(node_list) - 1:
        return False
    adj = _adjacency(node_list, edge_set)
    return _is_connected_subset(set(node_list), adj)


def check_k_simulated_tree(
    nodes: Iterable[Hashable],
    edges: Iterable[Edge],
    mapping: Dict[Hashable, Hashable],
    k: int,
) -> Dict[str, object]:
    """Verify ``mapping`` witnesses that the graph is a k-simulated tree.

    Returns a report dict with ``ok`` plus the quotient tree's nodes and
    edges; raises :class:`ConfigurationError` on malformed inputs (e.g. a
    node missing from the mapping). Checks, per Definition 7.1:

    1. the fibers partition ``V`` into sets of size ≤ k;
    2. every fiber is connected in ``G``;
    3. the quotient (image of every edge) is a tree — which makes the
       induced map a homomorphism onto that tree.
    """
    node_list, edge_set = _normalize(nodes, edges)
    missing = [v for v in node_list if v not in mapping]
    if missing:
        raise ConfigurationError(f"mapping misses nodes: {missing}")
    adj = _adjacency(node_list, edge_set)

    fibers: Dict[Hashable, Set[Hashable]] = {}
    for v in node_list:
        fibers.setdefault(mapping[v], set()).add(v)

    oversized = {t: len(f) for t, f in fibers.items() if len(f) > k}
    disconnected = [
        t for t, f in fibers.items() if not _is_connected_subset(f, adj)
    ]

    quotient_nodes = sorted(fibers.keys(), key=repr)
    quotient_edges: Set[frozenset] = set()
    for e in edge_set:
        u, v = tuple(e)
        fu, fv = mapping[u], mapping[v]
        if fu != fv:
            quotient_edges.add(frozenset((fu, fv)))
    tree_ok = is_tree(
        quotient_nodes, [tuple(e) for e in quotient_edges]
    )

    return {
        "ok": not oversized and not disconnected and tree_ok,
        "oversized_fibers": oversized,
        "disconnected_fibers": disconnected,
        "quotient_is_tree": tree_ok,
        "quotient_nodes": quotient_nodes,
        "quotient_edges": sorted(
            (tuple(sorted(e, key=repr)) for e in quotient_edges), key=repr
        ),
        "max_fiber_size": max((len(f) for f in fibers.values()), default=0),
    }
