"""Lemma F.2, constructively: someone always assures an outcome.

For every finite two-party coin-toss protocol (cartesian input space,
bounded messages) and each bit ``b``:

1. either **A assures b** — A has a deviation forcing outcome ``b``
   against every input of honest B — or **B assures 1-b**;
2. symmetrically with the roles of the bits swapped.

Hence either some bit is *favorable* (both players assure it) or one
player is a **dictator** (assures both bits). The search below is the
lemma's induction on remaining message depth, implemented over the game
tree; it returns an :class:`Assurance` carrying a playable witness
strategy, and :func:`verify_assurance` replays the witness against every
honest input to certify it.
"""

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.trees.gametree import Action, History, TwoPartyProtocol
from repro.util.errors import ConfigurationError


@dataclass
class Assurance:
    """Witness that ``player`` can force ``bit`` from ``history`` on.

    ``plan`` maps histories (as tuples) to the deviating player's action:
    ``("send", msg)`` or ``("output",)`` — outputs always emit ``bit``.
    A missing history means "wait".
    """

    player: str
    bit: Any
    plan: Dict[History, Tuple]

    def action_at(self, history: History) -> Action:
        """The deviation's move at ``history`` (wait when unspecified)."""
        entry = self.plan.get(history)
        if entry is None:
            return Action("wait")
        if entry[0] == "send":
            return Action("send", entry[1])
        return Action("output", self.bit)


def _other(player: str) -> str:
    return "B" if player == "A" else "A"


def find_assurance(
    protocol: TwoPartyProtocol, bit_for_a: Any, bit_for_b: Any
) -> Assurance:
    """Decide Lemma F.2's disjunction: A assures ``bit_for_a`` or B
    assures ``bit_for_b``; return whichever branch holds (A checked
    first), with its witness plan.
    """
    result = _search(
        protocol,
        list(protocol.inputs_a),
        list(protocol.inputs_b),
        (),
        bit_for_a,
        bit_for_b,
        depth=2 * protocol.max_depth + 2,
    )
    if result is None:
        raise ConfigurationError(
            "protocol exhausted its depth bound during the search; "
            "increase max_depth"
        )
    return result


def _search(
    protocol: TwoPartyProtocol,
    inputs_a: List[Any],
    inputs_b: List[Any],
    history: History,
    bit_for_a: Any,
    bit_for_b: Any,
    depth: int,
) -> Optional[Assurance]:
    """The induction of Lemma F.2 over remaining depth.

    ``inputs_a``/``inputs_b`` are the inputs still consistent with
    ``history`` for each player. Returns an assurance for one of the two
    players, or ``None`` if the depth bound was hit.
    """
    if depth < 0:
        return None

    acts_a = {ia: protocol.action("A", ia, history) for ia in inputs_a}
    acts_b = {ib: protocol.action("B", ib, history) for ib in inputs_b}

    # Base case of the lemma: some input pair where neither player sends.
    # A correct protocol must then terminate with a fixed outcome o0, and
    # both players can assure o0 by simply terminating here. In particular
    # the player whose target bit equals o0 assures its bit; if neither
    # matches, the "silent outcome" still lets A force o0, so A assures o0
    # — the caller's disjunction is decided by matching bits below.
    silent_pairs = [
        (ia, ib)
        for ia in inputs_a
        if acts_a[ia].kind != "send"
        for ib in inputs_b
        if acts_b[ib].kind != "send"
    ]
    if silent_pairs:
        ia0, ib0 = silent_pairs[0]
        o0 = _silent_outcome(protocol, ia0, ib0, history, acts_a, acts_b)
        if o0 == bit_for_a:
            return Assurance("A", bit_for_a, {history: ("output",)})
        if o0 == bit_for_b:
            return Assurance("B", bit_for_b, {history: ("output",)})
        # Outcome matches neither requested bit (non-binary output);
        # treat A as assuring o0 — callers with binary outcomes never hit
        # this branch.
        return Assurance("A", o0, {history: ("output",)})

    # No silent pair: one player sends on all of its remaining inputs
    # (cartesian-product argument from the lemma).
    a_always_sends = all(acts_a[ia].kind == "send" for ia in inputs_a)
    b_always_sends = all(acts_b[ib].kind == "send" for ib in inputs_b)
    if a_always_sends:
        return _recurse_on_sender(
            protocol, "A", inputs_a, inputs_b, history, acts_a,
            bit_for_a, bit_for_b, depth,
        )
    if b_always_sends:
        return _recurse_on_sender(
            protocol, "B", inputs_b, inputs_a, history, acts_b,
            bit_for_b, bit_for_a, depth,
        )
    raise ConfigurationError(
        "inconsistent protocol: no silent pair yet neither player sends "
        "on all inputs (input space not treated as a cartesian product?)"
    )


def _recurse_on_sender(
    protocol: TwoPartyProtocol,
    sender: str,
    sender_inputs: List[Any],
    other_inputs: List[Any],
    history: History,
    sender_acts: Dict[Any, Action],
    bit_for_sender: Any,
    bit_for_other: Any,
    depth: int,
) -> Optional[Assurance]:
    """Inductive step: group the sender's inputs by first message.

    If in some branch ``P_M`` the sender assures its bit, it assures it
    globally by *choosing* to send ``M`` (this is where the deviation
    departs from honesty). Otherwise the other player assures its bit in
    every branch, hence globally by waiting and responding per branch.
    """
    by_message: Dict[Any, List[Any]] = {}
    for inp in sender_inputs:
        by_message.setdefault(sender_acts[inp].value, []).append(inp)

    other_plans: Dict[History, Tuple] = {}
    for message, branch_inputs in sorted(by_message.items(), key=repr):
        child_history = history + ((sender, message),)
        if sender == "A":
            child = _search(
                protocol, branch_inputs, other_inputs, child_history,
                bit_for_sender, bit_for_other, depth - 1,
            )
        else:
            child = _search(
                protocol, other_inputs, branch_inputs, child_history,
                bit_for_other, bit_for_sender, depth - 1,
            )
        if child is None:
            return None
        if child.player == sender and child.bit == bit_for_sender:
            # Sender assures its bit in this branch: adopt the branch plan
            # and prepend the choice of M.
            plan = dict(child.plan)
            plan[history] = ("send", message)
            return Assurance(sender, bit_for_sender, plan)
        # Otherwise the other player assures its bit in this branch.
        other_plans.update(child.plan)
    return Assurance(_other(sender), bit_for_other, other_plans)


def _silent_outcome(
    protocol: TwoPartyProtocol,
    ia: Any,
    ib: Any,
    history: History,
    acts_a: Dict[Any, Action],
    acts_b: Dict[Any, Action],
) -> Any:
    """Outcome when both players stop sending at ``history``."""
    act_a, act_b = acts_a[ia], acts_b[ib]
    if act_a.kind == "output":
        return act_a.value
    if act_b.kind == "output":
        return act_b.value
    raise ConfigurationError(
        f"protocol deadlocks on inputs ({ia!r}, {ib!r}) at {history!r}: "
        "both players wait forever"
    )


def verify_assurance(
    protocol: TwoPartyProtocol, assurance: Assurance, max_steps: int = 64
) -> bool:
    """Replay the witness deviation against every honest input.

    The deviating player follows ``assurance.plan``; the honest player
    follows the protocol. Returns True iff every playout ends with the
    honest player's output (or the deviator's forced output) equal to
    ``assurance.bit`` — i.e. the deviator can claim the outcome without
    the honest player ever producing a contradicting output.
    """
    deviator = assurance.player
    honest = _other(deviator)
    honest_inputs = (
        protocol.inputs_b if honest == "B" else protocol.inputs_a
    )
    for h_input in honest_inputs:
        history: History = ()
        honest_output = None
        deviator_done = False
        for _ in range(max_steps):
            progressed = False
            if not deviator_done:
                act = assurance.action_at(history)
                if act.kind == "send":
                    history = history + ((deviator, act.value),)
                    progressed = True
                elif act.kind == "output":
                    deviator_done = True
                    progressed = True
            if honest_output is None:
                act = protocol.action(honest, h_input, history)
                if act.kind == "send":
                    history = history + ((honest, act.value),)
                    progressed = True
                elif act.kind == "output":
                    honest_output = act.value
                    progressed = True
            if honest_output is not None and (
                deviator_done or assurance.action_at(history).kind == "wait"
            ):
                break
            if not progressed:
                break
        if honest_output is not None and honest_output != assurance.bit:
            return False
    return True


def classify_protocol(protocol: TwoPartyProtocol) -> Dict[str, Any]:
    """Full Lemma F.2 classification of a binary-output protocol.

    Returns which player assures 0 and which assures 1, plus the derived
    verdict: a ``favorable`` bit both can force, or a ``dictator`` player
    who forces both.
    """
    first = find_assurance(protocol, bit_for_a=0, bit_for_b=1)
    second = find_assurance(protocol, bit_for_a=1, bit_for_b=0)
    verdict: Dict[str, Any] = {
        "assures": {first.player: first.bit, second.player: second.bit},
        "witnesses": (first, second),
    }
    if first.player == second.player:
        verdict["dictator"] = first.player
    else:
        # One player assures b, the other also assures b (their bits
        # coincide) — the favorable-value case.
        verdict["favorable"] = first.bit if first.bit == second.bit else None
    return verdict
