"""Finite two-party protocols as extensive games (Appendix F objects).

Lemma F.2 quantifies over every two-party coin-toss protocol with a
bounded number of messages and a cartesian-product input set. We model one
as a pair of *action functions*: given the player's private input and the
shared message history, the player either sends a message, waits, or
terminates with an output. The dictator search
(:mod:`repro.trees.dictator`) walks this object exactly along the lines of
the lemma's induction.

Two canonical example protocols are provided:

- :func:`xor_coin_protocol` — A announces its input bit, then B announces
  its, output is the XOR. Classic non-resilient coin toss: in the
  asynchronous model B can wait for A's bit and then pick its own, so B is
  a *dictator* (assures both 0 and 1).
- :func:`first_to_speak_protocol` — both players output a constant
  ``bit`` immediately; a degenerate protocol where both players assure
  ``bit`` (the lemma's "favorable value" case).
"""

from dataclasses import dataclass
from typing import Any, Callable, List, Sequence, Tuple

from repro.util.errors import ConfigurationError

#: History entries are ``(player, message)`` with player in {"A", "B"}.
History = Tuple[Tuple[str, Any], ...]


@dataclass(frozen=True)
class Action:
    """One protocol step: ``kind`` in {"send", "wait", "output"}."""

    kind: str
    value: Any = None


def send(message: Any) -> Action:
    """The player transmits ``message``."""
    return Action("send", message)


def wait() -> Action:
    """The player blocks until the other party sends."""
    return Action("wait")


def output(value: Any) -> Action:
    """The player terminates with ``value``."""
    return Action("output", value)


class TwoPartyProtocol:
    """A finite, deterministic two-party protocol.

    Parameters
    ----------
    inputs_a, inputs_b:
        The players' private input sets (randomness is modelled as input,
        exactly as the paper does by handing each processor a random
        string). The protocol's input space is their cartesian product.
    action_a, action_b:
        ``(input, history) → Action`` for each player.
    max_depth:
        Upper bound on messages, enforcing the lemma's "guarantees a
        bounded amount of messages" hypothesis.
    """

    def __init__(
        self,
        inputs_a: Sequence[Any],
        inputs_b: Sequence[Any],
        action_a: Callable[[Any, History], Action],
        action_b: Callable[[Any, History], Action],
        max_depth: int = 16,
    ):
        if not inputs_a or not inputs_b:
            raise ConfigurationError("input sets must be non-empty")
        self.inputs_a = list(inputs_a)
        self.inputs_b = list(inputs_b)
        self.action_a = action_a
        self.action_b = action_b
        self.max_depth = max_depth

    def action(self, player: str, own_input: Any, history: History) -> Action:
        """Dispatch to the right action function."""
        if player == "A":
            return self.action_a(own_input, history)
        if player == "B":
            return self.action_b(own_input, history)
        raise ConfigurationError(f"unknown player {player!r}")

    def honest_outcome(self, input_a: Any, input_b: Any) -> Any:
        """Play both honest strategies to completion; return the outcome.

        The scheduler lets A act first whenever both are ready to send —
        on this class of alternating protocols the outcome is
        schedule-independent (both players' outputs must agree for the
        protocol to be correct; we assert they do).
        """
        history: History = ()
        out_a = out_b = None
        for _ in range(2 * self.max_depth + 2):
            acted = False
            if out_a is None:
                act = self.action("A", input_a, history)
                if act.kind == "send":
                    history = history + (("A", act.value),)
                    acted = True
                elif act.kind == "output":
                    out_a = act.value
                    acted = True
            if out_b is None:
                act = self.action("B", input_b, history)
                if act.kind == "send":
                    history = history + (("B", act.value),)
                    acted = True
                elif act.kind == "output":
                    out_b = act.value
                    acted = True
            if out_a is not None and out_b is not None:
                if out_a != out_b:
                    raise ConfigurationError(
                        f"protocol outputs disagree: {out_a!r} vs {out_b!r}"
                    )
                return out_a
            if not acted:
                raise ConfigurationError(
                    "protocol deadlocked: both players waiting"
                )
        raise ConfigurationError("protocol exceeded max_depth")


def xor_coin_protocol() -> TwoPartyProtocol:
    """A sends its bit, then B sends its bit; both output the XOR."""

    def act_a(bit: int, history: History) -> Action:
        if len(history) == 0:
            return send(bit)
        if len(history) == 2:
            return output(history[0][1] ^ history[1][1])
        return wait()

    def act_b(bit: int, history: History) -> Action:
        if len(history) == 1:
            return send(bit)
        if len(history) == 2:
            return output(history[0][1] ^ history[1][1])
        return wait()

    return TwoPartyProtocol([0, 1], [0, 1], act_a, act_b, max_depth=4)


def first_to_speak_protocol(bit: int) -> TwoPartyProtocol:
    """Degenerate protocol: both players immediately output ``bit``."""

    def act(_input: Any, _history: History) -> Action:
        return output(bit)

    return TwoPartyProtocol([0], [0], act, act, max_depth=1)
