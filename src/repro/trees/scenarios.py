"""Scenario specs for the Section 7 / Appendix F tree machinery.

Tree games are deterministic decision procedures, not Monte-Carlo
estimators — a "trial" here is one run of the Lemma F.2/F.3 search or
one Definition 7.1 witness check. Registering them anyway buys the
shared entry point: ``python -m repro sweep`` can grid over chain
lengths or block counts, the smoke suite exercises them alongside the
probabilistic scenarios, and the determinism test holds them to the same
worker-invariance contract (trivially, but a spec that accidentally
picked up process-local state would be caught).

Registered here (imported for effect by
:mod:`repro.experiments.catalog`):

- ``tree/xor-coin`` — Lemma F.2 on the canonical 2-message XOR
  protocol; outcome is the extracted dictator;
- ``tree/xor-chain`` — Lemma F.3: collapse an XOR chain protocol to two
  parties and extract the component dictator;
- ``tree/clique-caterpillar`` — Theorem 7.2: verify the Figure-2 style
  4-simulated-tree witness; outcome is the generic ceil(n/2) bound it
  beats.
"""

from typing import Optional, Tuple

from repro.experiments.scenario import (
    Params,
    ScenarioSpec,
    register_scenario,
)
from repro.sim.execution import FAIL
from repro.trees.dictator import classify_protocol, verify_assurance
from repro.trees.gametree import xor_coin_protocol
from repro.trees.impossibility import impossibility_certificate
from repro.trees.simulated import check_k_simulated_tree
from repro.trees.treegame import collapse_to_two_party, xor_tree_protocol


def expected_dictator(outcome, params: Params) -> bool:
    """Success predicate: the search found the predicted dictator."""
    return outcome == params["expect"]


def _classify_outcome(protocol) -> Tuple[object, int]:
    """Run the Lemma F.2 classification; outcome = dictator (verified)."""
    verdict = classify_protocol(protocol)
    dictator = verdict.get("dictator")
    if dictator is None:
        favorable = verdict.get("favorable")
        return (FAIL if favorable is None else f"favorable:{favorable}"), 0
    for witness in verdict["witnesses"]:
        if not verify_assurance(protocol, witness):
            return FAIL, 0
    return dictator, 0


# repro-lint: allow[R302] exact witness evaluation: the xor-coin bound is deterministic, no randomness consumed
def run_xor_coin_trial(
    params: Params, registry, max_steps: Optional[int]
) -> Tuple[object, int]:
    return _classify_outcome(xor_coin_protocol())


# repro-lint: allow[R302] exact witness evaluation: collapsing the chain is deterministic, no randomness consumed
def run_xor_chain_trial(
    params: Params, registry, max_steps: Optional[int]
) -> Tuple[object, int]:
    protocol = collapse_to_two_party(
        xor_tree_protocol(params["chain"]), leaf=0
    )
    return _classify_outcome(protocol)


# repro-lint: allow[R302] exact witness evaluation: the caterpillar certificate is checked deterministically, no randomness consumed
def run_clique_caterpillar_trial(
    params: Params, registry, max_steps: Optional[int]
) -> Tuple[object, int]:
    """Verify the 4-clique caterpillar witness; outcome = generic bound."""
    blocks = params["blocks"]
    nodes = list(range(4 * blocks))
    edges = []
    for b in range(blocks):
        ids = nodes[4 * b : 4 * b + 4]
        edges += [(u, v) for u in ids for v in ids if u < v]
        if b:
            edges.append((4 * b - 1, 4 * b))
    mapping = {v: v // 4 for v in nodes}
    report = check_k_simulated_tree(nodes, edges, mapping, k=4)
    if not report["ok"]:
        return FAIL, 0
    return impossibility_certificate(nodes, edges)["k"], 0


register_scenario(
    ScenarioSpec(
        name="tree/xor-coin",
        description="Lemma F.2 dictator extraction on the XOR coin protocol",
        run_trial=run_xor_coin_trial,
        defaults={"expect": "B"},
        success=expected_dictator,
        tags=("tree",),
    )
)

register_scenario(
    ScenarioSpec(
        name="tree/xor-chain",
        description="Lemma F.3 collapse of an XOR chain; component dictates",
        run_trial=run_xor_chain_trial,
        defaults={"chain": 3, "expect": "B"},
        success=expected_dictator,
        tags=("tree",),
    )
)

register_scenario(
    ScenarioSpec(
        name="tree/clique-caterpillar",
        description="Theorem 7.2: 4-simulated-tree witness on clique chains",
        run_trial=run_clique_caterpillar_trial,
        defaults={"blocks": 3},
        tags=("tree",),
    )
)
