"""Claim F.5, constructively: every connected graph is a ⌈n/2⌉-simulated tree.

The construction: pick a connected set ``B₁`` of size ⌈n/2⌉ (a BFS prefix),
then let the remaining parts be the connected components of the rest. Every
remaining component attaches (in the quotient) only to ``B₁`` — two distinct
components can't be adjacent, or they'd be one component — so the quotient
is a star, hence a tree, and every part has size ≤ ⌈n/2⌉.
"""

import math
from typing import Dict, Hashable, Iterable, List, Set, Tuple

from repro.trees.simulated import _adjacency, _normalize
from repro.util.errors import ConfigurationError

Edge = Tuple[Hashable, Hashable]


def half_partition(
    nodes: Iterable[Hashable], edges: Iterable[Edge]
) -> Dict[Hashable, int]:
    """Map each node to a part index witnessing the ⌈n/2⌉-simulated tree.

    Part ``0`` is the BFS-prefix block of size ⌈n/2⌉; parts ``1..`` are
    the connected components of the remainder. Raises if the graph is
    disconnected (Claim F.5 assumes connectivity).
    """
    node_list, edge_set = _normalize(nodes, edges)
    adj = _adjacency(node_list, edge_set)
    n = len(node_list)
    if n == 0:
        raise ConfigurationError("graph must be non-empty")
    from repro.trees.simulated import _is_connected_subset

    if not _is_connected_subset(set(node_list), adj):
        raise ConfigurationError("graph is disconnected")

    # BFS prefix of size ceil(n/2) from the first node: always connected.
    target = math.ceil(n / 2)
    start = node_list[0]
    order: List[Hashable] = [start]
    seen: Set[Hashable] = {start}
    queue = [start]
    while queue and len(order) < target:
        u = queue.pop(0)
        for w in sorted(adj[u], key=repr):
            if w not in seen:
                seen.add(w)
                order.append(w)
                queue.append(w)
                if len(order) == target:
                    break
    if len(order) < target:
        raise ConfigurationError("graph is disconnected")
    block = set(order)

    mapping: Dict[Hashable, int] = {v: 0 for v in block}
    part = 0
    remaining = [v for v in node_list if v not in block]
    unassigned = set(remaining)
    for v in remaining:
        if v not in unassigned:
            continue
        part += 1
        stack = [v]
        unassigned.discard(v)
        mapping[v] = part
        while stack:
            u = stack.pop()
            for w in adj[u]:
                if w in unassigned:
                    unassigned.discard(w)
                    mapping[w] = part
                    stack.append(w)
    return mapping


def quotient_is_tree(
    nodes: Iterable[Hashable],
    edges: Iterable[Edge],
    mapping: Dict[Hashable, int],
) -> bool:
    """Convenience re-check that ``mapping``'s quotient graph is a tree."""
    from repro.trees.simulated import check_k_simulated_tree

    node_list = list(nodes)
    k = max(
        len([v for v in node_list if mapping[v] == p])
        for p in set(mapping.values())
    )
    return check_k_simulated_tree(node_list, edges, mapping, k)[
        "quotient_is_tree"
    ]
