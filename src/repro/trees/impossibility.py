"""Corollary F.4 / Theorem 7.2 glue: extract the biasing coalition.

For a graph witnessed as a k-simulated tree, *some* fiber of the
simulation mapping is a coalition of size ≤ k that can assure an outcome
of any FLE protocol (Corollary F.4): the tree simulates the protocol, the
tree dictator lemma (F.2/F.3) names a tree node that assures a value, and
that node's fiber is the coalition.

Which fiber wins depends on the protocol; the certificate here returns
the *candidate set* (all fibers, each ≤ k and connected) together with
the quantities Theorem 7.2 bounds. The concrete dictator extraction for a
given two-party protocol lives in :mod:`repro.trees.dictator`; composing
both is demonstrated in ``examples/tree_impossibility.py`` and the E9
bench.
"""

from typing import Dict, Hashable, Iterable, List, Tuple

from repro.trees.partition import half_partition
from repro.trees.simulated import check_k_simulated_tree
from repro.util.errors import ConfigurationError

Edge = Tuple[Hashable, Hashable]


def biasing_coalition(
    nodes: Iterable[Hashable],
    edges: Iterable[Edge],
    mapping: Dict[Hashable, Hashable],
    k: int,
) -> List[List[Hashable]]:
    """Candidate coalitions for a verified k-simulated tree witness.

    Returns every fiber (each one a connected coalition of size ≤ k);
    Corollary F.4 guarantees at least one of them assures an outcome for
    any fixed FLE protocol on the graph.
    """
    node_list = list(nodes)
    report = check_k_simulated_tree(node_list, edges, mapping, k)
    if not report["ok"]:
        raise ConfigurationError(
            f"mapping is not a valid k-simulated tree witness: {report}"
        )
    fibers: Dict[Hashable, List[Hashable]] = {}
    for v in node_list:
        fibers.setdefault(mapping[v], []).append(v)
    return [sorted(f, key=repr) for f in fibers.values()]


def impossibility_certificate(
    nodes: Iterable[Hashable], edges: Iterable[Edge]
) -> Dict[str, object]:
    """Theorem 7.2 certificate for an arbitrary connected graph.

    Builds the Claim F.5 ⌈n/2⌉ partition, verifies it, and reports the
    resulting bound: no FLE protocol on this graph is ε-k-resilient for
    ``k = max fiber size`` and ``ε ≤ 1/n``.
    """
    node_list = list(nodes)
    n = len(node_list)
    mapping = half_partition(node_list, edges)
    sizes: Dict[int, int] = {}
    for v in node_list:
        sizes[mapping[v]] = sizes.get(mapping[v], 0) + 1
    k = max(sizes.values())
    report = check_k_simulated_tree(node_list, edges, mapping, k)
    if not report["ok"]:
        raise ConfigurationError(f"internal: F.5 construction invalid: {report}")
    return {
        "n": n,
        "k": k,
        "mapping": mapping,
        "epsilon_bound": 1.0 / n if n else 0.0,
        "parts": sizes,
        "quotient_edges": report["quotient_edges"],
        "statement": (
            f"no FLE protocol on this graph is eps-{k}-resilient for "
            f"eps <= 1/{n} (Theorem 7.2 via Claim F.5)"
        ),
    }
