"""Section 7 / Appendix F: impossibility on k-simulated trees.

- :mod:`repro.trees.gametree` — finite two-party protocols as extensive
  games (the objects Lemma F.2 quantifies over);
- :mod:`repro.trees.dictator` — the constructive content of Lemma F.2:
  backward-induction search for the player who *assures* an outcome, with
  a playable witness strategy;
- :mod:`repro.trees.simulated` — Definition 7.1 (k-simulated tree)
  verification;
- :mod:`repro.trees.partition` — Claim F.5: every connected graph is a
  ⌈n/2⌉-simulated tree, constructively;
- :mod:`repro.trees.impossibility` — Corollary F.4 / Theorem 7.2 glue:
  extract the biasing coalition for a k-simulated tree.
"""

from repro.trees.gametree import (
    TwoPartyProtocol,
    Action,
    send,
    wait,
    output,
    xor_coin_protocol,
    first_to_speak_protocol,
)
from repro.trees.dictator import (
    Assurance,
    find_assurance,
    verify_assurance,
    classify_protocol,
)
from repro.trees.simulated import is_tree, check_k_simulated_tree
from repro.trees.partition import half_partition, quotient_is_tree
from repro.trees.impossibility import (
    biasing_coalition,
    impossibility_certificate,
)
from repro.trees.treegame import (
    TreeProtocol,
    collapse_to_two_party,
    xor_tree_protocol,
)

__all__ = [
    "TwoPartyProtocol",
    "Action",
    "send",
    "wait",
    "output",
    "xor_coin_protocol",
    "first_to_speak_protocol",
    "Assurance",
    "find_assurance",
    "verify_assurance",
    "classify_protocol",
    "is_tree",
    "check_k_simulated_tree",
    "half_partition",
    "quotient_is_tree",
    "biasing_coalition",
    "impossibility_certificate",
    "TreeProtocol",
    "collapse_to_two_party",
    "xor_tree_protocol",
]
