"""Lemma F.3, executable: dictator extraction on tree networks.

Lemma F.3 lifts the two-party dictator lemma (F.2) to trees by
induction: pick a leaf ``a`` with neighbour ``b``; view the protocol as
a two-party game between ``a`` and "``b`` simulating the rest of the
tree"; either ``a`` assures a value (done) or ``b`` is a two-party
dictator, in which case recurse on the tree minus ``a`` with ``b``
simulating ``a`` internally.

This module makes the *collapse* step executable:
:class:`TreeProtocol` describes a deterministic multi-party protocol on
a tree, and :func:`collapse_to_two_party` folds everything except a
chosen leaf into a single composite player, producing an ordinary
:class:`~repro.trees.gametree.TwoPartyProtocol` that the Lemma F.2
search (:func:`~repro.trees.dictator.find_assurance`) can decide.

Scope note: the collapse runs the composite component to quiescence
between external events (internal-first scheduling). For the
deterministic, tree-structured toy protocols used here the component's
behaviour is schedule-independent, so the extracted assurance is valid
for every oblivious schedule — the property Lemma F.3 needs.
"""

import itertools
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.trees.gametree import Action, TwoPartyProtocol
from repro.util.errors import ConfigurationError

#: Node action: (own_input, inbox_history) -> Action; ``send`` actions
#: carry ``(neighbour, message)`` as their value.
NodeAction = Callable[[Any, Tuple], Action]


class TreeProtocol:
    """A deterministic protocol on an undirected tree.

    Parameters
    ----------
    edges:
        Undirected tree edges over hashable node names.
    inputs:
        Map node → list of possible private inputs.
    actions:
        Map node → action function ``(input, history) → Action`` where
        ``history`` is the tuple of ``(neighbour, direction, message)``
        triples seen so far (direction is "in" or "out") and ``send``
        actions carry ``(neighbour, message)``.
    max_steps:
        Bound on total protocol messages.
    """

    def __init__(
        self,
        edges: List[Tuple[Hashable, Hashable]],
        inputs: Dict[Hashable, List[Any]],
        actions: Dict[Hashable, NodeAction],
        max_steps: int = 32,
    ):
        from repro.trees.simulated import is_tree

        nodes = sorted(inputs.keys(), key=repr)
        if not is_tree(nodes, edges):
            raise ConfigurationError("edges must form a tree over the nodes")
        if set(actions) != set(nodes):
            raise ConfigurationError("every node needs an action function")
        self.nodes = nodes
        self.edges = [tuple(e) for e in edges]
        self.inputs = {v: list(vals) for v, vals in inputs.items()}
        self.actions = dict(actions)
        self.max_steps = max_steps
        self._adj: Dict[Hashable, List[Hashable]] = {v: [] for v in nodes}
        for u, v in edges:
            self._adj[u].append(v)
            self._adj[v].append(u)

    def neighbors(self, v: Hashable) -> List[Hashable]:
        return list(self._adj[v])

    def leaves(self) -> List[Hashable]:
        return [v for v in self.nodes if len(self._adj[v]) == 1]


class _ComponentState:
    """Deterministic execution state of the non-leaf component."""

    def __init__(
        self,
        protocol: TreeProtocol,
        members: List[Hashable],
        member_inputs: Dict[Hashable, Any],
        leaf: Hashable,
        port: Hashable,
    ):
        self.protocol = protocol
        self.members = list(members)
        self.member_inputs = dict(member_inputs)
        self.leaf = leaf
        self.port = port  # the member adjacent to the leaf
        self.histories: Dict[Hashable, Tuple] = {v: () for v in members}
        self.outputs: Dict[Hashable, Any] = {}
        self.outbox: List[Any] = []  # messages destined for the leaf
        self.steps = 0

    def run_to_quiescence(self) -> None:
        """Process internal traffic until nothing moves."""
        member_set = set(self.members)
        progressed = True
        while progressed:
            progressed = False
            for v in self.members:
                if v in self.outputs:
                    continue
                action = self.protocol.actions[v](
                    self.member_inputs[v], self.histories[v]
                )
                if action.kind == "output":
                    self.outputs[v] = action.value
                    progressed = True
                elif action.kind == "send":
                    to, message = action.value
                    self.steps += 1
                    if self.steps > self.protocol.max_steps:
                        raise ConfigurationError(
                            "component exceeded the message bound"
                        )
                    self.histories[v] = self.histories[v] + (
                        (to, "out", message),
                    )
                    if to == self.leaf:
                        if v != self.port:
                            raise ConfigurationError(
                                "only the port node touches the leaf"
                            )
                        self.outbox.append(message)
                    elif to in member_set:
                        self.histories[to] = self.histories[to] + (
                            (v, "in", message),
                        )
                    else:
                        raise ConfigurationError(
                            f"{v} sent to non-neighbour {to}"
                        )
                    progressed = True

    def deliver_from_leaf(self, message: Any) -> None:
        self.histories[self.port] = self.histories[self.port] + (
            (self.leaf, "in", message),
        )

    def common_output(self) -> Optional[Any]:
        """The unanimous member output once all members terminated."""
        if len(self.outputs) != len(self.members):
            return None
        distinct = set(self.outputs.values())
        if len(distinct) != 1:
            raise ConfigurationError("component outputs disagree")
        return next(iter(distinct))


def collapse_to_two_party(
    protocol: TreeProtocol, leaf: Hashable
) -> TwoPartyProtocol:
    """Fold everything except ``leaf`` into composite player B.

    Player A is the leaf (inputs unchanged); player B's inputs are the
    cartesian product of the other nodes' inputs; B's action function
    replays the external message history into a fresh component
    simulation, runs it to quiescence, and exposes the next queued
    leaf-bound message (or the common output, or wait).
    """
    if leaf not in set(protocol.nodes) or len(protocol.neighbors(leaf)) != 1:
        raise ConfigurationError(f"{leaf!r} is not a leaf of the tree")
    port = protocol.neighbors(leaf)[0]
    members = [v for v in protocol.nodes if v != leaf]
    composite_inputs = [
        dict(zip(members, combo))
        for combo in itertools.product(
            *(protocol.inputs[v] for v in members)
        )
    ]

    def leaf_action(own_input: Any, history: Tuple) -> Action:
        translated = tuple(
            (port, "in" if player == "B" else "out", message)
            for player, message in history
        )
        act = protocol.actions[leaf](own_input, translated)
        if act.kind == "send":
            to, message = act.value
            if to != port:
                raise ConfigurationError("leaf sent to non-neighbour")
            return Action("send", message)
        return act

    def component_action(member_inputs: Dict, history: Tuple) -> Action:
        state = _ComponentState(protocol, members, member_inputs, leaf, port)
        state.run_to_quiescence()
        emitted = 0
        for player, message in history:
            if player == "A":
                state.deliver_from_leaf(message)
                state.run_to_quiescence()
            else:
                emitted += 1
        if emitted < len(state.outbox):
            return Action("send", state.outbox[emitted])
        output = state.common_output()
        if output is not None:
            return Action("output", output)
        return Action("wait")

    # Hashability: composite inputs are dicts; freeze them as tuples.
    frozen_inputs = [tuple(sorted(d.items(), key=repr)) for d in composite_inputs]

    def component_action_frozen(frozen: Tuple, history: Tuple) -> Action:
        return component_action(dict(frozen), history)

    return TwoPartyProtocol(
        inputs_a=list(protocol.inputs[leaf]),
        inputs_b=frozen_inputs,
        action_a=leaf_action,
        action_b=component_action_frozen,
        max_depth=protocol.max_steps,
    )


def xor_tree_protocol(chain: int = 3) -> TreeProtocol:
    """A path of ``chain`` nodes computing XOR of all input bits.

    Node 0 announces its bit toward node 1; each internal node forwards
    the accumulated XOR onward; the last node XORs its own bit and
    floods the result back. Everyone outputs the result. The *last*
    node sees everything before committing — the tree dictator the
    search should find.
    """
    if chain < 2:
        raise ConfigurationError("chain needs at least 2 nodes")
    edges = [(i, i + 1) for i in range(chain - 1)]
    inputs = {i: [0, 1] for i in range(chain)}

    def make_action(i: int) -> NodeAction:
        def act(bit: int, history: Tuple) -> Action:
            received_in = [m for (_, d, m) in history if d == "in"]
            sent = [m for (_, d, m) in history if d == "out"]
            if i == 0:
                if not sent:
                    return Action("send", (1, bit))
                if received_in:
                    return Action("output", received_in[-1])
                return Action("wait")
            upstream, downstream = i - 1, i + 1
            if i < chain - 1:
                if received_in and len(sent) == 0:
                    return Action("send", (downstream, received_in[0] ^ bit))
                if len(received_in) >= 2 and len(sent) == 1:
                    return Action("send", (upstream, received_in[1]))
                if len(received_in) >= 2:
                    return Action("output", received_in[1])
                return Action("wait")
            # Last node: fold own bit, report back, output.
            if received_in and not sent:
                return Action("send", (upstream, received_in[0] ^ bit))
            if sent:
                return Action("output", sent[0])
            return Action("wait")

        return act

    actions = {i: make_action(i) for i in range(chain)}
    return TreeProtocol(edges, inputs, actions, max_steps=4 * chain)
