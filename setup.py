"""Setup shim: lets ``pip install -e .`` work offline (no wheel package).

Declares the ``src/`` package layout so an editable install exposes
``repro`` without the ``PYTHONPATH=src`` workaround; pytest
configuration lives in pytest.ini (not pyproject.toml, which would
force pip onto the PEP 517 editable path that needs ``wheel``).
"""
from setuptools import find_packages, setup

setup(
    name="repro-fle-rational-rings",
    version="1.1.0",
    description=(
        "Reproduction of 'Fair Leader Election for Rational Agents in "
        "Asynchronous Rings and Networks' (Yifrach & Mansour, PODC 2018)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    # numpy drives the vectorized batch-trial kernels; the library
    # degrades gracefully without it (repro.util.mtcompat gates every
    # numpy touch), but installs should get the fast path.
    install_requires=["numpy"],
)
