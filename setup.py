"""Setup shim: lets ``pip install -e .`` work offline (no wheel package).

Metadata lives in setup.cfg; pytest configuration lives in pyproject.toml.
"""
from setuptools import setup

setup()
